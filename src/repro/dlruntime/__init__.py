"""A miniature deep-learning runtime, standing in for TensorFlow / PyTorch.

The paper's DL-centric architecture ships features out of the RDBMS into an
external framework.  This package provides that external framework: a
numpy-backed layer graph with *explicit memory accounting* (so the OOM
behaviour of Table 3 is deterministic), a reverse-mode autodiff tape and
SGD/Adam optimizers (the Sec. 6.1 training extension), and a
ConnectorX-style :class:`~repro.dlruntime.connector.Connector` that performs
real serialization across the system boundary.
"""

from .memory import MemoryBudget, MemoryStats
from .device import Device, cpu_device, gpu_device
from .layers import (
    Conv2d,
    Flatten,
    Layer,
    Linear,
    MaxPool2d,
    Model,
    ReLU,
    Sigmoid,
    Softmax,
)
from .autodiff import ADTensor
from .optimizers import SGD, Adam, Optimizer
from .runtime import ExternalRuntime, RunResult
from .connector import Connector, ExtractResult

__all__ = [
    "MemoryBudget",
    "MemoryStats",
    "Device",
    "cpu_device",
    "gpu_device",
    "Layer",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Softmax",
    "Conv2d",
    "MaxPool2d",
    "Flatten",
    "Model",
    "ADTensor",
    "Optimizer",
    "SGD",
    "Adam",
    "ExternalRuntime",
    "RunResult",
    "Connector",
    "ExtractResult",
]
