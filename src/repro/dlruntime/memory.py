"""Deterministic memory accounting.

The paper's Table 3 compares architectures by *whether they survive* a
given operator on a 61 GB machine.  Re-running that on arbitrary hardware
would make OOM behaviour flaky, so every engine in this repo charges its
allocations against an explicit :class:`MemoryBudget` and raises
:class:`~repro.errors.OutOfMemoryError` deterministically.  The budget also
records the peak, which the benchmarks report alongside latency.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import OutOfMemoryError


@dataclass
class MemoryStats:
    """Usage counters for one budget."""

    limit: int
    used: int = 0
    peak: int = 0
    allocations: int = 0
    oom_events: int = 0

    @property
    def available(self) -> int:
        return self.limit - self.used


class MemoryBudget:
    """A byte-granular allocation tracker with a hard limit.

    ``limit_bytes=None`` means unlimited (used by reference computations in
    tests).  ``allocate``/``release`` must balance; the :meth:`borrow`
    context manager does both.
    """

    def __init__(self, limit_bytes: int | None, name: str = "budget"):
        self.name = name
        self._limit = limit_bytes if limit_bytes is not None else 1 << 62
        self.stats = MemoryStats(limit=self._limit)
        # Budgets are shared across the serving front-end's worker
        # threads; charge/release must stay balanced under concurrency.
        self._lock = threading.Lock()

    @property
    def limit(self) -> int:
        return self._limit

    @property
    def used(self) -> int:
        return self.stats.used

    @property
    def peak(self) -> int:
        return self.stats.peak

    def reset_peak(self) -> None:
        self.stats.peak = self.stats.used

    def allocate(self, nbytes: int, tag: str = "") -> int:
        """Charge ``nbytes``; raises :class:`OutOfMemoryError` over limit."""
        if nbytes < 0:
            raise ValueError(f"cannot allocate a negative size ({nbytes})")
        with self._lock:
            if self.stats.used + nbytes > self._limit:
                self.stats.oom_events += 1
                raise OutOfMemoryError(nbytes, self.stats.used, self._limit, tag)
            self.stats.used += nbytes
            self.stats.allocations += 1
            if self.stats.used > self.stats.peak:
                self.stats.peak = self.stats.used
        return nbytes

    def release(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"cannot release a negative size ({nbytes})")
        with self._lock:
            if nbytes > self.stats.used:
                raise ValueError(
                    f"releasing {nbytes} bytes but only {self.stats.used} are in use"
                )
            self.stats.used -= nbytes

    @contextmanager
    def borrow(self, nbytes: int, tag: str = "") -> Iterator[None]:
        """Charge for the duration of a block."""
        self.allocate(nbytes, tag)
        try:
            yield
        finally:
            self.release(nbytes)

    def charge_array(self, array: np.ndarray, tag: str = "") -> int:
        """Charge an ndarray's actual byte size; returns the size charged."""
        return self.allocate(int(array.nbytes), tag)

    def __repr__(self) -> str:
        return (
            f"MemoryBudget({self.name}: used={self.stats.used}, "
            f"peak={self.stats.peak}, limit={self._limit})"
        )


def unlimited() -> MemoryBudget:
    """A budget that never OOMs (for reference computations)."""
    return MemoryBudget(None, name="unlimited")
