"""Simulated compute devices.

Section 3(2) of the paper observes that whether GPU offload pays off
depends on host→device transfer cost versus the compute speedup, modeled
as a producer-transfer-consumer process.  We simulate devices with a
throughput/transfer cost model; the
:class:`repro.resources.allocator.DeviceAllocator` uses these numbers to
place operators, and the pipelining executor (Sec. 5.2) schedules stages
over them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class Device:
    """One compute device with an analytic performance model.

    ``flops_per_s`` is effective throughput on dense linear algebra;
    ``transfer_bandwidth_bytes_per_s`` and ``transfer_latency_s`` describe
    the host link (zero-cost for the host CPU itself);
    ``memory_bytes`` bounds what a pipeline stage placed here may hold.
    """

    name: str
    kind: str  # "cpu" or "gpu"
    flops_per_s: float
    transfer_bandwidth_bytes_per_s: float
    transfer_latency_s: float
    memory_bytes: int

    def __post_init__(self) -> None:
        if self.kind not in ("cpu", "gpu"):
            raise ConfigError(f"device kind must be 'cpu' or 'gpu', got {self.kind!r}")
        if self.flops_per_s <= 0:
            raise ConfigError("flops_per_s must be positive")
        if self.memory_bytes <= 0:
            raise ConfigError("memory_bytes must be positive")

    def compute_time(self, flops: float) -> float:
        """Seconds to execute ``flops`` floating point operations."""
        return flops / self.flops_per_s

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` from the host to this device."""
        if self.kind == "cpu":
            return 0.0
        return self.transfer_latency_s + nbytes / self.transfer_bandwidth_bytes_per_s


def cpu_device(
    name: str = "cpu0",
    flops_per_s: float = 5.0e10,
    memory_bytes: int = 8 << 30,
) -> Device:
    """A host CPU: moderate throughput, free transfers."""
    return Device(
        name=name,
        kind="cpu",
        flops_per_s=flops_per_s,
        transfer_bandwidth_bytes_per_s=float("inf"),
        transfer_latency_s=0.0,
        memory_bytes=memory_bytes,
    )


def gpu_device(
    name: str = "gpu0",
    flops_per_s: float = 5.0e12,
    bandwidth_bytes_per_s: float = 12.0e9,
    transfer_latency_s: float = 10.0e-6,
    memory_bytes: int = 4 << 30,
) -> Device:
    """A discrete GPU: two orders faster compute, PCIe-limited transfers."""
    return Device(
        name=name,
        kind="gpu",
        flops_per_s=flops_per_s,
        transfer_bandwidth_bytes_per_s=bandwidth_bytes_per_s,
        transfer_latency_s=transfer_latency_s,
        memory_bytes=memory_bytes,
    )
