"""Uniform affine weight quantization (the compression half of Sec. 4.1)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError


@dataclass
class QuantizedTensor:
    """An integer-coded tensor with its affine dequantization parameters."""

    codes: np.ndarray  # integer codes
    scale: float
    zero_point: float
    bits: int
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        # Packed size: bits per element, rounded up to whole bytes.
        return (self.codes.size * self.bits + 7) // 8

    @property
    def compression_ratio(self) -> float:
        original = int(np.prod(self.shape)) * 8
        return original / self.nbytes if self.nbytes else float("inf")


def quantize(tensor: np.ndarray, bits: int = 8) -> QuantizedTensor:
    """Uniform affine quantization to ``bits`` bits per element."""
    if not 1 <= bits <= 16:
        raise ShapeError("bits must be in [1, 16]")
    tensor = np.asarray(tensor, dtype=np.float64)
    lo, hi = float(tensor.min()), float(tensor.max())
    levels = (1 << bits) - 1
    if hi == lo:
        scale = 1.0
    else:
        scale = (hi - lo) / levels
    codes = np.clip(np.round((tensor - lo) / scale), 0, levels)
    dtype = np.uint8 if bits <= 8 else np.uint16
    return QuantizedTensor(
        codes=codes.astype(dtype),
        scale=scale,
        zero_point=lo,
        bits=bits,
        shape=tensor.shape,
    )


def dequantize(quantized: QuantizedTensor) -> np.ndarray:
    """Reconstruct the float tensor (lossy)."""
    return (
        quantized.codes.astype(np.float64) * quantized.scale + quantized.zero_point
    ).reshape(quantized.shape)


def quantization_error(tensor: np.ndarray, bits: int = 8) -> float:
    """Max elementwise reconstruction error at a bit width."""
    return float(np.max(np.abs(dequantize(quantize(tensor, bits)) - tensor)))
