"""Accuracy-aware tensor-block deduplication (Sec. 4.1).

Models sharing architecture or fine-tuned from a common base contain many
identical or *nearly* identical weight blocks.  The store deduplicates at
block granularity:

* exact duplicates are caught by content hash;
* approximate duplicates are caught by LSH candidate lookup followed by a
  max-elementwise-error check against ``epsilon`` — a stored block may
  stand in for a new block if they differ by at most ``epsilon`` per
  element, which bounds the perturbation to any downstream activation.

This mirrors the paper's prior system (Zhou et al., VLDB 2022) that the
vision builds on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError


@dataclass
class DedupReport:
    """Space accounting for one store."""

    logical_blocks: int
    stored_blocks: int
    exact_hits: int
    approximate_hits: int
    logical_bytes: int
    stored_bytes: int

    @property
    def space_saving(self) -> float:
        if not self.logical_bytes:
            return 0.0
        return 1.0 - self.stored_bytes / self.logical_bytes


class BlockDedupStore:
    """Content-addressed block storage with bounded-error approximation."""

    def __init__(
        self,
        block_shape: tuple[int, int],
        epsilon: float = 0.0,
        num_projections: int = 12,
        seed: int = 0,
    ):
        if epsilon < 0:
            raise ShapeError("epsilon must be non-negative")
        self.block_shape = block_shape
        self.epsilon = float(epsilon)
        self._blocks: list[np.ndarray] = []
        self._by_hash: dict[bytes, int] = {}
        self._buckets: dict[tuple, list[int]] = {}
        dim = block_shape[0] * block_shape[1]
        rng = np.random.default_rng(seed)
        self._planes = rng.normal(size=(num_projections, dim))
        self._logical = 0
        self._exact_hits = 0
        self._approx_hits = 0

    def _signature(self, flat: np.ndarray) -> tuple:
        return tuple(bool(b) for b in (self._planes @ flat) > 0)

    def put(self, block: np.ndarray) -> int:
        """Store (or dedup) one block; returns its storage id."""
        if block.shape != self.block_shape:
            raise ShapeError(
                f"store expects blocks of shape {self.block_shape}, got {block.shape}"
            )
        self._logical += 1
        block = np.ascontiguousarray(block, dtype=np.float64)
        digest = hashlib.sha256(block.tobytes()).digest()
        existing = self._by_hash.get(digest)
        if existing is not None:
            self._exact_hits += 1
            return existing
        flat = block.reshape(-1)
        if self.epsilon > 0:
            signature = self._signature(flat)
            for candidate in self._buckets.get(signature, ()):
                if np.max(np.abs(self._blocks[candidate].reshape(-1) - flat)) <= self.epsilon:
                    self._approx_hits += 1
                    return candidate
        block_id = len(self._blocks)
        self._blocks.append(block)
        self._by_hash[digest] = block_id
        if self.epsilon > 0:
            self._buckets.setdefault(self._signature(flat), []).append(block_id)
        return block_id

    def get(self, block_id: int) -> np.ndarray:
        return self._blocks[block_id]

    def put_matrix(self, matrix: np.ndarray) -> list[list[int]]:
        """Chunk a matrix into blocks (zero-padded edges) and store each.

        Returns the grid of block ids; :meth:`get_matrix` reassembles.
        """
        br, bc = self.block_shape
        rows = -(-matrix.shape[0] // br)
        cols = -(-matrix.shape[1] // bc)
        grid: list[list[int]] = []
        for i in range(rows):
            row_ids = []
            for j in range(cols):
                block = np.zeros(self.block_shape)
                chunk = matrix[i * br : (i + 1) * br, j * bc : (j + 1) * bc]
                block[: chunk.shape[0], : chunk.shape[1]] = chunk
                row_ids.append(self.put(block))
            grid.append(row_ids)
        return grid

    def get_matrix(self, grid: list[list[int]], shape: tuple[int, int]) -> np.ndarray:
        br, bc = self.block_shape
        out = np.zeros((len(grid) * br, len(grid[0]) * bc))
        for i, row_ids in enumerate(grid):
            for j, block_id in enumerate(row_ids):
                out[i * br : (i + 1) * br, j * bc : (j + 1) * bc] = self._blocks[
                    block_id
                ]
        return out[: shape[0], : shape[1]]

    def report(self) -> DedupReport:
        block_bytes = self.block_shape[0] * self.block_shape[1] * 8
        return DedupReport(
            logical_blocks=self._logical,
            stored_blocks=len(self._blocks),
            exact_hits=self._exact_hits,
            approximate_hits=self._approx_hits,
            logical_bytes=self._logical * block_bytes,
            stored_bytes=len(self._blocks) * block_bytes,
        )
