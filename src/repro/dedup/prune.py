"""Magnitude pruning (the other compression axis of Sec. 4.1)."""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def magnitude_prune(tensor: np.ndarray, target_sparsity: float) -> np.ndarray:
    """Zero the smallest-magnitude entries until ``target_sparsity`` is hit.

    Returns a new array; the original is untouched.
    """
    if not 0.0 <= target_sparsity < 1.0:
        raise ShapeError("target_sparsity must be in [0, 1)")
    tensor = np.asarray(tensor, dtype=np.float64)
    if target_sparsity == 0.0:
        return tensor.copy()
    flat = np.abs(tensor).reshape(-1)
    k = int(round(target_sparsity * flat.size))
    if k == 0:
        return tensor.copy()
    threshold = np.partition(flat, k - 1)[k - 1]
    pruned = tensor.copy()
    pruned[np.abs(pruned) <= threshold] = 0.0
    return pruned


def sparsity(tensor: np.ndarray) -> float:
    """Fraction of exactly-zero entries."""
    tensor = np.asarray(tensor)
    return float(np.mean(tensor == 0.0))
