"""Storage co-optimization (Sec. 4): accuracy-aware deduplication and
compression of tensor data, multi-version models under SLAs, and
data/model co-partitioning."""

from .blocks import BlockDedupStore, DedupReport
from .quantize import QuantizedTensor, dequantize, quantize
from .prune import magnitude_prune, sparsity
from .versions import ModelVersion, ModelVersionManager
from .copartition import CoPartitioner, PartitionReport

__all__ = [
    "BlockDedupStore",
    "DedupReport",
    "quantize",
    "dequantize",
    "QuantizedTensor",
    "magnitude_prune",
    "sparsity",
    "ModelVersion",
    "ModelVersionManager",
    "CoPartitioner",
    "PartitionReport",
]
