"""Multi-version models with SLA-driven selection (Sec. 4.1).

The storage optimizer creates several versions of one model — full
precision, quantized, pruned — each with a different size / latency /
accuracy point.  At query time the optimizer picks the cheapest version
whose accuracy satisfies the SLA, exactly the accuracy-aware query
optimization the paper proposes.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..dlruntime.layers import Conv2d, Linear, Model
from ..errors import ModelError, NoServableVersionError, SlaViolationError
from .prune import magnitude_prune
from .quantize import dequantize, quantize

#: Version serving states (see :meth:`ModelVersionManager.select` with
#: ``require_servable=True``): a version is *servable* once it has been
#: loaded or promoted; freshly created versions are not.
CREATED = "created"
LOADED = "loaded"
PROMOTED = "promoted"


@dataclass
class ModelVersion:
    """One size/latency/accuracy point of a model."""

    name: str
    model: Model
    size_bytes: int
    accuracy: float
    kind: str  # "full", "quantized", "pruned"
    detail: str = ""
    state: str = CREATED  # "created", "loaded", or "promoted"

    @property
    def servable(self) -> bool:
        return self.state in (LOADED, PROMOTED)


def _transform_model(model: Model, transform: Callable[[np.ndarray], np.ndarray], suffix: str) -> Model:
    """Deep-copy a model with every weight matrix transformed."""
    clone = copy.deepcopy(model)
    clone.name = f"{model.name}-{suffix}"
    for layer in clone.layers:
        if isinstance(layer, Linear):
            layer.weight.data = transform(layer.weight.data)
        elif isinstance(layer, Conv2d):
            layer.kernels.data = transform(layer.kernels.data)
    return clone


class ModelVersionManager:
    """Creates and selects model versions under accuracy SLAs."""

    def __init__(
        self,
        model: Model,
        accuracy_fn: Callable[[Model], float],
    ):
        self._base = model
        self._accuracy_fn = accuracy_fn
        base_accuracy = accuracy_fn(model)
        self._versions: dict[str, ModelVersion] = {
            "full": ModelVersion(
                name="full",
                model=model,
                size_bytes=model.param_bytes,
                accuracy=base_accuracy,
                kind="full",
            )
        }

    @property
    def versions(self) -> dict[str, ModelVersion]:
        return dict(self._versions)

    @property
    def base_accuracy(self) -> float:
        return self._versions["full"].accuracy

    def add_quantized(self, bits: int) -> ModelVersion:
        """Create a ``bits``-bit quantized version (stored dequantized;
        the size reflects the packed representation on disk)."""
        quantized_bytes = 0

        def transform(weights: np.ndarray) -> np.ndarray:
            nonlocal quantized_bytes
            q = quantize(weights, bits)
            quantized_bytes += q.nbytes
            return dequantize(q)

        clone = _transform_model(self._base, transform, f"int{bits}")
        version = ModelVersion(
            name=f"int{bits}",
            model=clone,
            size_bytes=quantized_bytes,
            accuracy=self._accuracy_fn(clone),
            kind="quantized",
            detail=f"{bits}-bit uniform affine",
        )
        self._versions[version.name] = version
        return version

    def add_pruned(self, sparsity_level: float) -> ModelVersion:
        clone = _transform_model(
            self._base,
            lambda w: magnitude_prune(w, sparsity_level),
            f"p{int(sparsity_level * 100)}",
        )
        # Sparse storage cost: values + 4-byte indices for the survivors.
        survivors = sum(
            int(np.count_nonzero(layer.weight.data))
            for layer in clone.layers
            if isinstance(layer, Linear)
        ) + sum(
            int(np.count_nonzero(layer.kernels.data))
            for layer in clone.layers
            if isinstance(layer, Conv2d)
        )
        version = ModelVersion(
            name=f"p{int(sparsity_level * 100)}",
            model=clone,
            size_bytes=survivors * 12,
            accuracy=self._accuracy_fn(clone),
            kind="pruned",
            detail=f"{sparsity_level:.0%} magnitude pruning",
        )
        self._versions[version.name] = version
        return version

    def mark_loaded(self, name: str) -> ModelVersion:
        """Record that a version was loaded into a serving tier."""
        version = self.get(name)
        if version.state == CREATED:
            version.state = LOADED
        return version

    def mark_promoted(self, name: str) -> ModelVersion:
        """Record that a version was promoted to primary serving."""
        version = self.get(name)
        version.state = PROMOTED
        return version

    def select(
        self, min_accuracy: float, require_servable: bool = False
    ) -> ModelVersion:
        """Smallest version meeting the accuracy SLA.

        With ``require_servable=True`` only loaded/promoted versions are
        candidates; if versions meet the SLA but none is servable, the
        failure names every candidate and its state
        (:class:`~repro.errors.NoServableVersionError`) instead of a
        generic error, so the caller can see *why* each was skipped.
        """
        feasible = [
            v for v in self._versions.values() if v.accuracy >= min_accuracy
        ]
        if not feasible:
            raise SlaViolationError(
                f"no model version reaches accuracy {min_accuracy:.2%}; best is "
                f"{max(v.accuracy for v in self._versions.values()):.2%}"
            )
        if require_servable:
            servable = [v for v in feasible if v.servable]
            if not servable:
                raise NoServableVersionError(
                    self._base.name,
                    [(v.name, v.state) for v in feasible],
                )
            feasible = servable
        return min(feasible, key=lambda v: v.size_bytes)

    def get(self, name: str) -> ModelVersion:
        if name not in self._versions:
            raise ModelError(f"no version named {name!r}")
        return self._versions[name]


#: Historical alias: the SLA-driven selection entry point.
SlaVersionManager = ModelVersionManager


def derive_version(
    base: Model,
    quantize_bits: int | None = None,
    prune_sparsity: float | None = None,
) -> Model:
    """Derive a deployable model variant from a base model's weights.

    The lifecycle tier's ``register_model_version`` prepare path uses
    this when given ``quantize_bits`` / ``prune_sparsity`` instead of an
    explicit model.
    """
    if (quantize_bits is None) == (prune_sparsity is None):
        raise ModelError(
            "specify exactly one of quantize_bits or prune_sparsity "
            "(or pass an explicit model)"
        )
    if quantize_bits is not None:
        return _transform_model(
            base,
            lambda w: dequantize(quantize(w, quantize_bits)),
            f"int{quantize_bits}",
        )
    return _transform_model(
        base,
        lambda w: magnitude_prune(w, prune_sparsity),
        f"p{int(prune_sparsity * 100)}",
    )
