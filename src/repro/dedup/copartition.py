"""Data/model co-partitioning (Sec. 4.2).

The first matmul of an FFNN over relational features becomes a join of
the feature relation with the weight-block relation on the feature-chunk
id.  If the feature rows are partitioned by the same chunking as the
weight's row blocks, that join is local per partition — no shuffle.  The
co-partitioner assigns both sides to partitions, verifies the locality
invariant, and quantifies the shuffle traffic a non-co-partitioned layout
would have paid (the benefit the paper demonstrated in Lachesis).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError


@dataclass
class PartitionReport:
    """Shuffle accounting for one join layout."""

    num_partitions: int
    colocated_pairs: int
    total_pairs: int
    shuffle_bytes_avoided: int

    @property
    def locality(self) -> float:
        return self.colocated_pairs / self.total_pairs if self.total_pairs else 1.0


class CoPartitioner:
    """Assigns feature column-chunks and weight row-blocks to partitions."""

    def __init__(self, num_partitions: int, block_rows: int):
        if num_partitions < 1:
            raise ShapeError("need at least one partition")
        if block_rows < 1:
            raise ShapeError("block_rows must be >= 1")
        self.num_partitions = num_partitions
        self.block_rows = block_rows

    def partition_of_chunk(self, chunk_id: int) -> int:
        """Both relations use this same placement function — that is the
        co-partitioning."""
        return chunk_id % self.num_partitions

    def feature_chunks(self, num_features: int) -> list[int]:
        """Chunk ids covering a feature vector of this width."""
        return list(range(-(-num_features // self.block_rows)))

    def weight_row_blocks(self, in_features: int) -> list[int]:
        return self.feature_chunks(in_features)

    def report(
        self,
        num_features: int,
        num_rows: int,
        co_partitioned: bool = True,
        rng_seed: int = 0,
    ) -> PartitionReport:
        """Quantify join locality for a layout.

        A join pair is (feature chunk, matching weight row-block).  With
        co-partitioning every pair is colocated; with independent random
        placement only ~1/num_partitions of pairs are, and each remote
        pair ships one feature-chunk's bytes per row.
        """
        chunks = self.feature_chunks(num_features)
        total_pairs = len(chunks)
        if co_partitioned:
            colocated = total_pairs
        else:
            rng = np.random.default_rng(rng_seed)
            weight_placement = rng.integers(0, self.num_partitions, size=total_pairs)
            colocated = int(
                np.sum(
                    weight_placement
                    == np.array([self.partition_of_chunk(c) for c in chunks])
                )
            )
        chunk_bytes = self.block_rows * 8
        remote_pairs = total_pairs - colocated
        shuffle_avoided = remote_pairs * num_rows * chunk_bytes
        if co_partitioned:
            # The avoided traffic is what the random layout would have paid
            # in expectation.
            expected_remote = total_pairs * (1.0 - 1.0 / self.num_partitions)
            shuffle_avoided = int(expected_remote * num_rows * chunk_bytes)
        return PartitionReport(
            num_partitions=self.num_partitions,
            colocated_pairs=colocated,
            total_pairs=total_pairs,
            shuffle_bytes_avoided=shuffle_avoided,
        )
