"""Thread-configuration modeling for UDF-invoked BLAS (Sec. 3.1).

The paper's scenario: the RDBMS runs a pipeline stage with ``db_threads``
data-parallel workers, and each worker's linear-algebra UDF spins up
``blas_threads`` OpenMP threads.  Total runnable threads is their
product; when it exceeds the core count, context switching and cache
thrashing tax throughput.  ``throughput_model`` is the analytic model the
tuner optimises: near-linear speedup up to the core count, a
multiplicative oversubscription penalty beyond it, and a small per-thread
coordination overhead that penalises extreme configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

# Model constants, calibrated once against microbenchmarks of
# numpy-backed UDFs under multiprocessing on an 8-core host.
OVERSUBSCRIPTION_PENALTY = 0.35  # throughput multiplier decay per 2x over
COORDINATION_OVERHEAD = 0.01  # per-thread synchronisation tax
DB_PARALLEL_EFFICIENCY = 0.92  # scan/exchange efficiency per extra DB thread
BLAS_PARALLEL_EFFICIENCY = 0.85  # BLAS scaling efficiency per extra thread


@dataclass(frozen=True)
class ThreadConfig:
    """One candidate configuration."""

    db_threads: int
    blas_threads: int

    def __post_init__(self) -> None:
        if self.db_threads < 1 or self.blas_threads < 1:
            raise ConfigError("thread counts must be >= 1")

    @property
    def total_threads(self) -> int:
        return self.db_threads * self.blas_threads


def _scaling(threads: int, efficiency: float) -> float:
    """Sub-linear parallel speedup: 1 + e + e^2 + ... for extra threads."""
    speedup = 0.0
    gain = 1.0
    for __ in range(threads):
        speedup += gain
        gain *= efficiency
    return speedup


def throughput_model(config: ThreadConfig, cores: int) -> float:
    """Relative throughput of a configuration on ``cores`` physical cores."""
    if cores < 1:
        raise ConfigError("cores must be >= 1")
    raw = _scaling(config.db_threads, DB_PARALLEL_EFFICIENCY) * _scaling(
        config.blas_threads, BLAS_PARALLEL_EFFICIENCY
    )
    total = config.total_threads
    if total > cores:
        # Each doubling beyond the core count multiplies throughput by
        # (1 - penalty): context switches and cache contention.
        over = total / cores
        raw *= (1.0 - OVERSUBSCRIPTION_PENALTY) ** _log2(over)
    raw *= max(0.0, 1.0 - COORDINATION_OVERHEAD * total)
    return raw


def _log2(x: float) -> float:
    import math

    return math.log2(x)


def worker_thread_budget(cores: int, workers: int = 1) -> int:
    """Per-process thread budget when ``workers`` processes share a host.

    Each process in the cluster pool gets an equal slice of the cores —
    ``cores // workers``, floored at 1 — so the per-process DB/BLAS
    thread tuning cannot oversubscribe the machine ``workers``-fold.
    The old heuristic handed every process the full core count, which
    was only correct for the single-process thread path.
    """
    if cores < 1:
        raise ConfigError("cores must be >= 1")
    if workers < 1:
        raise ConfigError("workers must be >= 1")
    return max(1, cores // workers)


def candidate_grid(
    cores: int, max_threads: int | None = None, workers: int = 1
) -> list[ThreadConfig]:
    """All (db, blas) pairs up to ``max_threads`` per dimension.

    With ``workers > 1`` the grid is sized from this process's share of
    the cores (:func:`worker_thread_budget`), not the whole machine.
    """
    budget = worker_thread_budget(cores, workers)
    limit = max_threads if max_threads is not None else 2 * budget
    return [
        ThreadConfig(db, blas)
        for db in range(1, limit + 1)
        for blas in range(1, limit + 1)
    ]
