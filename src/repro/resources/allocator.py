"""Device allocation via a producer-transfer-consumer model (Sec. 3.2).

The paper's observation (from its decision-forest study): GPU offload only
pays when the compute saved exceeds the host→device transfer added.  The
allocator models each candidate placement as a producer (host prepares
batches), a transfer link, and a consumer (device computes), with the
transfer overlapped against compute in ``chunks`` pieces, and places each
operator on the device with the lowest modeled latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.cost import node_flops, node_memory_requirement
from ..core.ir import LinAlgNode
from ..dlruntime.device import Device
from ..errors import ConfigError


@dataclass
class PlacementDecision:
    """Chosen device plus the per-device latency estimates that drove it."""

    node: LinAlgNode
    device: Device
    estimates: dict[str, float]

    @property
    def device_name(self) -> str:
        return self.device.name


def modeled_latency(
    node: LinAlgNode,
    batch_size: int,
    device: Device,
    chunks: int = 4,
) -> float:
    """Producer-transfer-consumer latency with chunked overlap.

    The batch is moved in ``chunks`` pieces; compute on chunk *i* overlaps
    the transfer of chunk *i+1*, so the modeled latency is one chunk's
    transfer (the pipeline fill) plus the max-dominated steady state.
    """
    if chunks < 1:
        raise ConfigError("chunks must be >= 1")
    flops = node_flops(node, batch_size)
    move_bytes = node_memory_requirement(node, batch_size)
    compute = device.compute_time(flops)
    transfer = device.transfer_time(move_bytes)
    if transfer == 0.0:
        return compute
    chunk_transfer = transfer / chunks
    chunk_compute = compute / chunks
    steady = (chunks - 1) * max(chunk_transfer, chunk_compute)
    return chunk_transfer + steady + chunk_compute


class DeviceAllocator:
    """Places operators on the latency-minimising device."""

    def __init__(self, devices: list[Device], chunks: int = 4):
        if not devices:
            raise ConfigError("allocator needs at least one device")
        self.devices = list(devices)
        self.chunks = chunks

    def place(self, node: LinAlgNode, batch_size: int) -> PlacementDecision:
        """Pick the best device for one operator at one batch size."""
        estimates: dict[str, float] = {}
        feasible: list[tuple[float, Device]] = []
        required = node_memory_requirement(node, batch_size)
        for device in self.devices:
            latency = modeled_latency(node, batch_size, device, self.chunks)
            estimates[device.name] = latency
            if required <= device.memory_bytes:
                feasible.append((latency, device))
        if not feasible:
            raise ConfigError(
                f"operator {node.op.value} needs {required} bytes; no device fits"
            )
        feasible.sort(key=lambda pair: pair[0])
        return PlacementDecision(node=node, device=feasible[0][1], estimates=estimates)

    def crossover_batch(
        self,
        node: LinAlgNode,
        cpu: Device,
        gpu: Device,
        max_batch: int = 1 << 20,
    ) -> int | None:
        """Smallest batch size at which the GPU beats the CPU (binary search).

        Returns None if the GPU never wins up to ``max_batch`` — the
        regime the paper observed for small models on small data.
        """
        def gpu_wins(batch: int) -> bool:
            return modeled_latency(node, batch, gpu, self.chunks) < modeled_latency(
                node, batch, cpu, self.chunks
            )

        if not gpu_wins(max_batch):
            return None
        lo, hi = 1, max_batch
        while lo < hi:
            mid = (lo + hi) // 2
            if gpu_wins(mid):
                hi = mid
            else:
                lo = mid + 1
        return lo
