"""Coordinated memory budgeting between the RDBMS and DL runtimes.

Section 3(1): configuring the buffer pool without accounting for the DL
runtime colocated on the same machine (and vice versa) either starves one
side or overcommits the host.  The coordinator owns the machine's memory
and hands out child budgets whose limits always sum to at most the host
total; re-splitting is atomic and refuses to shrink a child below its
current usage.
"""

from __future__ import annotations

from ..dlruntime.memory import MemoryBudget
from ..errors import ConfigError


class ResourceCoordinator:
    """Splits one host memory total across named consumers."""

    def __init__(self, total_bytes: int):
        if total_bytes <= 0:
            raise ConfigError("total memory must be positive")
        self.total_bytes = total_bytes
        self._budgets: dict[str, MemoryBudget] = {}
        self._shares: dict[str, int] = {}

    def allocate_budget(self, name: str, share_bytes: int) -> MemoryBudget:
        """Create a child budget with a fixed share of the host memory."""
        if name in self._budgets:
            raise ConfigError(f"budget {name!r} already exists")
        if share_bytes <= 0:
            raise ConfigError("share must be positive")
        if self.allocated_bytes + share_bytes > self.total_bytes:
            raise ConfigError(
                f"cannot allocate {share_bytes} bytes to {name!r}: only "
                f"{self.total_bytes - self.allocated_bytes} bytes unassigned"
            )
        budget = MemoryBudget(share_bytes, name=name)
        self._budgets[name] = budget
        self._shares[name] = share_bytes
        return budget

    @property
    def allocated_bytes(self) -> int:
        return sum(self._shares.values())

    def budget(self, name: str) -> MemoryBudget:
        if name not in self._budgets:
            raise ConfigError(f"no budget named {name!r}")
        return self._budgets[name]

    def resize(self, name: str, new_share_bytes: int) -> MemoryBudget:
        """Re-split: replace one child's share (its usage must still fit)."""
        old = self.budget(name)
        if new_share_bytes < old.used:
            raise ConfigError(
                f"cannot shrink {name!r} to {new_share_bytes} bytes: "
                f"{old.used} bytes are in use"
            )
        others = self.allocated_bytes - self._shares[name]
        if others + new_share_bytes > self.total_bytes:
            raise ConfigError("resize would overcommit the host")
        replacement = MemoryBudget(new_share_bytes, name=name)
        replacement.stats.used = old.used
        replacement.stats.peak = old.peak
        self._budgets[name] = replacement
        self._shares[name] = new_share_bytes
        return replacement

    def utilisation(self) -> dict[str, float]:
        """Fraction of each share currently in use."""
        return {
            name: budget.used / self._shares[name]
            for name, budget in self._budgets.items()
        }

    def rebalance_even_slack(self) -> None:
        """Redistribute unassigned + unused capacity proportionally to demand.

        A simple autonomic policy: every consumer keeps what it uses, and
        the remaining host memory is divided evenly among consumers.
        """
        if not self._budgets:
            return
        used_total = sum(b.used for b in self._budgets.values())
        slack = self.total_bytes - used_total
        even = slack // len(self._budgets)
        # Shrink everyone to their floor first so the grows cannot
        # transiently overcommit.
        for name in list(self._budgets):
            self.resize(name, self._budgets[name].used)
        for name in list(self._budgets):
            self.resize(name, self._budgets[name].used + even)
