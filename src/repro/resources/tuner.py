"""Data-efficient thread-configuration tuning (Sec. 3.1).

Exhaustively measuring every (db_threads, blas_threads) pair is exactly
the "significant search latency" the paper warns about.  The tuner
implements successive halving (Hyperband's inner loop): all candidates
get a cheap low-fidelity evaluation, the best half survive to a more
expensive evaluation, and so on — plus a warm-start from historical
results on "similar" workloads (nearest neighbour in workload-descriptor
space), the retrieval-augmented idea the paper sketches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import ConfigError
from .threads import ThreadConfig, candidate_grid, throughput_model

# An evaluation returns throughput (higher is better); fidelity in (0, 1]
# scales how expensive/precise the measurement is.
EvalFunction = Callable[[ThreadConfig, float], float]


@dataclass
class TuningResult:
    best: ThreadConfig
    throughput: float
    evaluations: int
    history: list[tuple[ThreadConfig, float]] = field(default_factory=list)


@dataclass
class _HistoryEntry:
    descriptor: np.ndarray
    config: ThreadConfig


class ThreadTuner:
    """Successive-halving tuner with nearest-neighbour warm starts."""

    def __init__(self, cores: int, rng_seed: int = 0):
        if cores < 1:
            raise ConfigError("cores must be >= 1")
        self.cores = cores
        self._rng = np.random.default_rng(rng_seed)
        self._history: list[_HistoryEntry] = []

    # -- warm starts ------------------------------------------------------

    def record(self, descriptor: np.ndarray, config: ThreadConfig) -> None:
        """Remember a tuned configuration for a workload descriptor."""
        self._history.append(
            _HistoryEntry(np.asarray(descriptor, dtype=np.float64), config)
        )

    def warm_start(self, descriptor: np.ndarray) -> ThreadConfig | None:
        """Nearest recorded workload's configuration (None if no history)."""
        if not self._history:
            return None
        descriptor = np.asarray(descriptor, dtype=np.float64)
        distances = [
            float(np.linalg.norm(entry.descriptor - descriptor))
            for entry in self._history
        ]
        return self._history[int(np.argmin(distances))].config

    # -- tuning ------------------------------------------------------------

    def tune(
        self,
        evaluate: EvalFunction | None = None,
        descriptor: np.ndarray | None = None,
        initial_candidates: int = 16,
        rounds: int = 3,
    ) -> TuningResult:
        """Successive halving over the thread-configuration grid.

        ``evaluate(config, fidelity)`` defaults to the analytic
        :func:`~repro.resources.threads.throughput_model` with noise that
        shrinks as fidelity grows (mimicking longer measurements).
        """
        if evaluate is None:
            evaluate = self._analytic_eval
        grid = candidate_grid(self.cores)
        self._rng.shuffle(grid)  # type: ignore[arg-type]
        candidates = grid[:initial_candidates]
        warm = self.warm_start(descriptor) if descriptor is not None else None
        if warm is not None and warm not in candidates:
            candidates[0] = warm
        evaluations = 0
        history: list[tuple[ThreadConfig, float]] = []
        scores: dict[ThreadConfig, float] = {}
        for round_idx in range(rounds):
            fidelity = (round_idx + 1) / rounds
            scores = {}
            for config in candidates:
                score = evaluate(config, fidelity)
                scores[config] = score
                history.append((config, score))
                evaluations += 1
            survivors = sorted(candidates, key=lambda c: -scores[c])
            candidates = survivors[: max(1, len(survivors) // 2)]
        best = candidates[0]
        if descriptor is not None:
            self.record(descriptor, best)
        return TuningResult(
            best=best,
            throughput=scores[best],
            evaluations=evaluations,
            history=history,
        )

    def _analytic_eval(self, config: ThreadConfig, fidelity: float) -> float:
        truth = throughput_model(config, self.cores)
        noise_scale = 0.2 * (1.0 - fidelity) * truth
        return truth + self._rng.normal(scale=noise_scale) if noise_scale else truth
