"""Unified resource management (Sec. 3): one memory pool split between the
RDBMS and DL runtimes, device allocation via a producer-transfer-consumer
model, and thread-configuration tuning for UDF-invoked BLAS."""

from .budget import ResourceCoordinator
from .allocator import DeviceAllocator, PlacementDecision
from .threads import ThreadConfig, throughput_model
from .tuner import ThreadTuner, TuningResult

__all__ = [
    "ResourceCoordinator",
    "DeviceAllocator",
    "PlacementDecision",
    "ThreadConfig",
    "throughput_model",
    "ThreadTuner",
    "TuningResult",
]
