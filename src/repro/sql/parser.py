"""Recursive-descent SQL parser."""

from __future__ import annotations

from ..errors import SchemaError, SqlParseError
from ..relational.expressions import (
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    IsNull,
    Like,
    Literal,
    LogicalOp,
    UnaryOp,
)
from ..relational.operators.aggregate import aggregate_function_names
from ..relational.schema import ColumnType
from .ast import (
    AggregateCall,
    CreateTable,
    CreateTableAs,
    Delete,
    DeployModel,
    DropTable,
    Explain,
    ExplainAnalyze,
    Insert,
    InsertSelect,
    Join,
    PredictCall,
    RollbackModel,
    Select,
    SelectItem,
    Show,
    ShowEvents,
    ShowTimeline,
    ShowWorkload,
    Star,
    Statement,
    TableRef,
    UnionAll,
    Update,
)
from .lexer import SHOW_TARGETS, Token, TokenType, tokenize

_AGGREGATES = aggregate_function_names()


def parse(text: str) -> Statement:
    """Parse one SQL statement."""
    return _Parser(tokenize(text)).parse_statement()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise SqlParseError(
                f"expected {word} but found {self._peek().value!r} at "
                f"position {self._peek().position}"
            )

    def _accept_punct(self, ch: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.value == ch:
            self._advance()
            return True
        return False

    def _expect_punct(self, ch: str) -> None:
        if not self._accept_punct(ch):
            raise SqlParseError(
                f"expected {ch!r} but found {self._peek().value!r} at "
                f"position {self._peek().position}"
            )

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.type is not TokenType.IDENT:
            raise SqlParseError(
                f"expected identifier but found {token.value!r} at position "
                f"{token.position}"
            )
        self._advance()
        return token.value

    # -- statements ------------------------------------------------------

    def parse_statement(self) -> Statement:
        token = self._peek()
        if token.is_keyword("SELECT"):
            stmt: Statement = self._parse_select_or_union()
        elif token.is_keyword("EXPLAIN"):
            self._advance()
            analyze = self._peek()
            if analyze.type is TokenType.IDENT and analyze.value == "analyze":
                self._advance()
                stmt = ExplainAnalyze(self._parse_select())
            else:
                stmt = Explain(self._parse_select())
        elif token.is_keyword("CREATE"):
            stmt = self._parse_create()
        elif token.is_keyword("DROP"):
            stmt = self._parse_drop()
        elif token.is_keyword("INSERT"):
            stmt = self._parse_insert()
        elif token.is_keyword("DELETE"):
            stmt = self._parse_delete()
        elif token.is_keyword("UPDATE"):
            stmt = self._parse_update()
        elif token.is_keyword("SHOW"):
            self._advance()
            what = self._advance()
            if what.is_keyword("TABLES"):
                stmt = Show("tables")
            elif what.is_keyword("MODELS"):
                stmt = Show("models")
            elif what.type is TokenType.IDENT and what.value == "events":
                where = None
                if self._accept_keyword("WHERE"):
                    where = self._parse_expression()
                stmt = ShowEvents(where)
            elif what.type is TokenType.IDENT and what.value == "timeline":
                trace = self._peek()
                if trace.type is not TokenType.NUMBER:
                    raise SqlParseError(
                        "expected a numeric trace id after SHOW TIMELINE"
                    )
                self._advance()
                stmt = ShowTimeline(int(_parse_number(trace.value)))
            elif what.type is TokenType.IDENT and what.value == "workload":
                stmt = self._parse_show_workload()
            elif (
                what.type is TokenType.IDENT and what.value.upper() in SHOW_TARGETS
            ):
                stmt = Show(what.value)
            else:
                raise SqlParseError(
                    "expected TABLES, MODELS, METRICS, STATS, SERVER, "
                    "AUDIT, FAULTS, HEALTH, EVENTS, TIMELINE, WORKLOAD, "
                    "SLO, PROFILE, or DEPLOYMENTS after SHOW"
                )
        elif token.type is TokenType.IDENT and token.value == "deploy":
            stmt = self._parse_deploy()
        elif token.type is TokenType.IDENT and token.value == "rollback":
            stmt = self._parse_rollback()
        else:
            raise SqlParseError(
                f"cannot parse statement starting with {token.value!r}"
            )
        self._accept_punct(";")
        if self._peek().type is not TokenType.EOF:
            raise SqlParseError(
                f"unexpected trailing input at position {self._peek().position}"
            )
        return stmt

    # DEPLOY / ROLLBACK / MODEL / VERSION / CANARY / SHADOW are not
    # reserved words (existing queries may use them as identifiers), so
    # these productions match plain identifier tokens by value.

    def _accept_word(self, word: str) -> bool:
        token = self._peek()
        if token.type is TokenType.IDENT and token.value == word:
            self._advance()
            return True
        return False

    def _expect_word(self, word: str) -> None:
        token = self._peek()
        if not self._accept_word(word):
            raise SqlParseError(
                f"expected {word.upper()} but found {token.value!r} at "
                f"position {token.position}"
            )

    def _parse_deploy(self) -> DeployModel:
        self._expect_word("deploy")
        self._expect_word("model")
        model = self._expect_ident()
        self._expect_word("version")
        token = self._peek()
        if token.type not in (TokenType.IDENT, TokenType.NUMBER):
            raise SqlParseError(
                f"expected a version name after VERSION, found "
                f"{token.value!r} at position {token.position}"
            )
        self._advance()
        version = token.value
        canary_percent: float | None = None
        if self._accept_word("canary"):
            number = self._peek()
            if number.type is not TokenType.NUMBER:
                raise SqlParseError(
                    "expected a percentage after CANARY, found "
                    f"{number.value!r} at position {number.position}"
                )
            self._advance()
            canary_percent = float(_parse_number(number.value))
            pct = self._peek()
            if pct.type is TokenType.OPERATOR and pct.value == "%":
                self._advance()
            if not 0 < canary_percent <= 100:
                raise SqlParseError(
                    f"CANARY percentage must be in (0, 100], "
                    f"got {canary_percent:g}"
                )
        shadow = self._accept_word("shadow")
        return DeployModel(model, version, canary_percent, shadow)

    def _parse_rollback(self) -> RollbackModel:
        self._expect_word("rollback")
        self._expect_word("model")
        return RollbackModel(self._expect_ident())

    def _parse_delete(self) -> Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_ident()
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        return Delete(table, where)

    def _parse_select_or_union(self) -> Statement:
        first = self._parse_select()
        queries = [first]
        while self._peek().is_keyword("UNION"):
            self._advance()
            self._expect_keyword("ALL")
            queries.append(self._parse_select())
        if len(queries) == 1:
            return first
        return UnionAll(queries)

    def _parse_update(self) -> Update:
        self._expect_keyword("UPDATE")
        table = self._expect_ident()
        self._expect_keyword("SET")
        assignments: list[tuple[str, Expression]] = []
        while True:
            column = self._expect_ident()
            token = self._peek()
            if token.type is not TokenType.OPERATOR or token.value != "=":
                raise SqlParseError(f"expected '=' after column {column!r}")
            self._advance()
            assignments.append((column, self._parse_expression()))
            if not self._accept_punct(","):
                break
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        return Update(table, assignments, where)

    def _parse_create(self) -> Statement:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        name = self._expect_ident()
        if self._accept_keyword("AS"):
            return CreateTableAs(name, self._parse_select())
        self._expect_punct("(")
        columns: list[tuple[str, ColumnType]] = []
        while True:
            col_name = self._expect_ident()
            type_token = self._advance()
            if type_token.type not in (TokenType.IDENT, TokenType.KEYWORD):
                raise SqlParseError(f"expected a type after column {col_name!r}")
            try:
                ctype = ColumnType.parse(type_token.value)
            except SchemaError as exc:
                # An unknown type name is a grammar-level mistake: keep the
                # SQL front end's contract of raising only SqlError types.
                raise SqlParseError(str(exc)) from exc
            columns.append((col_name, ctype))
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return CreateTable(name, columns)

    def _parse_drop(self) -> DropTable:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        return DropTable(self._expect_ident())

    def _parse_insert(self) -> Statement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_ident()
        if self._peek().is_keyword("SELECT"):
            return InsertSelect(table, self._parse_select())
        self._expect_keyword("VALUES")
        rows: list[list[object]] = []
        while True:
            self._expect_punct("(")
            row: list[object] = []
            while True:
                row.append(self._parse_literal_value())
                if not self._accept_punct(","):
                    break
            self._expect_punct(")")
            rows.append(row)
            if not self._accept_punct(","):
                break
        return Insert(table, rows)

    def _parse_show_workload(self) -> ShowWorkload:
        """``SHOW WORKLOAD [TOP k BY latency|count|bytes | '<fingerprint>']``.

        TOP is a soft keyword (only meaningful here, stays usable as an
        identifier elsewhere); BY is required whenever TOP is given so
        the statement round-trips through unparse unambiguously.
        """
        token = self._peek()
        if token.type is TokenType.STRING:
            self._advance()
            return ShowWorkload(fingerprint=token.value)
        if token.type is TokenType.IDENT and token.value == "top":
            self._advance()
            count = self._peek()
            if count.type is not TokenType.NUMBER:
                raise SqlParseError(
                    "expected a row count after SHOW WORKLOAD TOP"
                )
            self._advance()
            top = int(_parse_number(count.value))
            if top < 1:
                raise SqlParseError("SHOW WORKLOAD TOP count must be >= 1")
            self._expect_keyword("BY")
            target = self._advance()
            if target.type is not TokenType.IDENT or target.value not in (
                "latency",
                "count",
                "bytes",
            ):
                raise SqlParseError(
                    "expected latency, count, or bytes after "
                    "SHOW WORKLOAD TOP k BY"
                )
            return ShowWorkload(top=top, by=target.value)
        return ShowWorkload()

    def _parse_literal_value(self) -> object:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return _parse_number(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return token.value
        if token.is_keyword("TRUE"):
            self._advance()
            return True
        if token.is_keyword("FALSE"):
            self._advance()
            return False
        if token.is_keyword("NULL"):
            self._advance()
            return None
        if token.type is TokenType.OPERATOR and token.value == "-":
            self._advance()
            number = self._peek()
            if number.type is not TokenType.NUMBER:
                raise SqlParseError("expected a number after unary minus")
            self._advance()
            value = _parse_number(number.value)
            return -value
        raise SqlParseError(
            f"expected a literal value at position {token.position}, "
            f"found {token.value!r}"
        )

    # -- SELECT -----------------------------------------------------------

    def _parse_select(self) -> Select:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())
        self._expect_keyword("FROM")
        table = self._parse_table_ref()
        joins: list[Join] = []
        while True:
            kind = "inner"
            if self._accept_keyword("LEFT"):
                kind = "left"
                self._expect_keyword("JOIN")
            elif self._accept_keyword("INNER"):
                self._expect_keyword("JOIN")
            elif not self._accept_keyword("JOIN"):
                break
            join_table = self._parse_table_ref()
            self._expect_keyword("ON")
            condition = self._parse_expression()
            joins.append(Join(join_table, condition, kind))
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expression()
        group_by: list[Expression] = []
        having = None
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_expression())
            while self._accept_punct(","):
                group_by.append(self._parse_expression())
            if self._accept_keyword("HAVING"):
                having = self._parse_expression()
        order_by: list[tuple[Expression, bool]] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            while True:
                expr = self._parse_expression()
                desc = False
                if self._accept_keyword("DESC"):
                    desc = True
                else:
                    self._accept_keyword("ASC")
                order_by.append((expr, desc))
                if not self._accept_punct(","):
                    break
        limit = None
        offset = 0
        if self._accept_keyword("LIMIT"):
            limit = self._parse_int("LIMIT")
            if self._accept_keyword("OFFSET"):
                offset = self._parse_int("OFFSET")
        return Select(
            items=items,
            table=table,
            joins=joins,
            where=where,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
            having=having,
        )

    def _parse_int(self, context: str) -> int:
        token = self._peek()
        if token.type is not TokenType.NUMBER or "." in token.value:
            raise SqlParseError(f"{context} requires an integer")
        self._advance()
        try:
            return int(token.value)
        except ValueError as exc:
            raise SqlParseError(f"{context} requires an integer") from exc

    def _parse_table_ref(self) -> TableRef:
        name = self._expect_ident()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._peek().type is TokenType.IDENT:
            alias = self._expect_ident()
        return TableRef(name, alias)

    def _parse_select_item(self) -> SelectItem:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return SelectItem(Star())
        expr = self._parse_call_or_expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        return SelectItem(expr, alias)

    def _parse_call_or_expression(self):
        token = self._peek()
        next_token = self._tokens[self._pos + 1] if self._pos + 1 < len(self._tokens) else None
        is_call = (
            next_token is not None
            and next_token.type is TokenType.PUNCT
            and next_token.value == "("
        )
        is_proba = (
            token.type is TokenType.IDENT and token.value == "predict_proba"
        )
        if (token.is_keyword("PREDICT") or is_proba) and is_call:
            self._advance()
            self._expect_punct("(")
            model = self._expect_ident()
            proba_class = None
            if is_proba:
                self._expect_punct(",")
                class_token = self._peek()
                if class_token.type is not TokenType.NUMBER or "." in class_token.value:
                    raise SqlParseError(
                        "PREDICT_PROBA requires an integer class index as its "
                        "second argument"
                    )
                self._advance()
                try:
                    proba_class = int(class_token.value)
                except ValueError as exc:
                    raise SqlParseError(
                        "PREDICT_PROBA requires an integer class index as "
                        "its second argument"
                    ) from exc
            args: list[Expression] = []
            while self._accept_punct(","):
                args.append(self._parse_expression())
            self._expect_punct(")")
            return PredictCall(model, args, proba_class=proba_class)
        if token.type is TokenType.IDENT and token.value.upper() in _AGGREGATES and is_call:
            func = token.value.upper()
            self._advance()
            self._expect_punct("(")
            star = self._peek()
            if func == "COUNT" and star.type is TokenType.OPERATOR and star.value == "*":
                self._advance()
                self._expect_punct(")")
                return AggregateCall("COUNT_STAR", None)
            arg = self._parse_expression()
            self._expect_punct(")")
            return AggregateCall(func, arg)
        return self._parse_expression()

    # -- expressions (precedence climbing) ---------------------------------

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = LogicalOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = LogicalOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self._accept_keyword("NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in (
            "=", "!=", "<>", "<", "<=", ">", ">=",
        ):
            self._advance()
            right = self._parse_additive()
            return Comparison(token.value, left, right)
        if token.is_keyword("IS"):
            self._advance()
            negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return IsNull(left, negated=negated)
        negated = False
        if token.is_keyword("NOT"):
            lookahead = self._tokens[self._pos + 1]
            if (
                lookahead.is_keyword("BETWEEN")
                or lookahead.is_keyword("IN")
                or lookahead.is_keyword("LIKE")
            ):
                self._advance()
                negated = True
                token = self._peek()
        if token.is_keyword("LIKE"):
            self._advance()
            pattern = self._peek()
            if pattern.type is not TokenType.STRING:
                raise SqlParseError("LIKE requires a string pattern")
            self._advance()
            return Like(left, pattern.value, negated=negated)
        if token.is_keyword("BETWEEN"):
            self._advance()
            lo = self._parse_additive()
            self._expect_keyword("AND")
            hi = self._parse_additive()
            # Desugar: left BETWEEN lo AND hi  ->  lo <= left AND left <= hi.
            expr: Expression = LogicalOp(
                "AND",
                Comparison("<=", lo, left),
                Comparison("<=", left, hi),
            )
            return UnaryOp("NOT", expr) if negated else expr
        if token.is_keyword("IN"):
            self._advance()
            self._expect_punct("(")
            values = [self._parse_additive()]
            while self._accept_punct(","):
                values.append(self._parse_additive())
            self._expect_punct(")")
            # Desugar: left IN (a, b, ...)  ->  left = a OR left = b OR ...
            expr = Comparison("=", left, values[0])
            for value in values[1:]:
                expr = LogicalOp("OR", expr, Comparison("=", left, value))
            return UnaryOp("NOT", expr) if negated else expr
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("+", "-"):
                self._advance()
                left = BinaryOp(token.value, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("*", "/", "%"):
                self._advance()
                left = BinaryOp(token.value, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expression:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "-":
            self._advance()
            return UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token.is_keyword("CASE"):
            self._advance()
            branches: list[tuple[Expression, Expression]] = []
            while self._accept_keyword("WHEN"):
                condition = self._parse_expression()
                self._expect_keyword("THEN")
                branches.append((condition, self._parse_expression()))
            default = None
            if self._accept_keyword("ELSE"):
                default = self._parse_expression()
            self._expect_keyword("END")
            if not branches:
                raise SqlParseError("CASE requires at least one WHEN branch")
            return CaseWhen(tuple(branches), default)
        if token.type is TokenType.NUMBER:
            self._advance()
            return Literal(_parse_number(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if token.is_keyword("NULL"):
            self._advance()
            return Literal(None)
        if self._accept_punct("("):
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        if token.type is TokenType.IDENT:
            name = self._expect_ident()
            if self._accept_punct("."):
                name = f"{name}.{self._expect_ident()}"
                return ColumnRef(name)
            if self._accept_punct("("):
                args: list[Expression] = []
                if not self._accept_punct(")"):
                    args.append(self._parse_expression())
                    while self._accept_punct(","):
                        args.append(self._parse_expression())
                    self._expect_punct(")")
                return FunctionCall(name, tuple(args))
            return ColumnRef(name)
        raise SqlParseError(
            f"unexpected token {token.value!r} at position {token.position}"
        )


def _parse_number(text: str) -> object:
    # The lexer's NUMBER pattern is permissive (e.g. "1e" lexes as one
    # token with a dangling exponent); conversion failures are grammar
    # errors, not internal ValueErrors.
    try:
        if any(c in text for c in ".eE"):
            return float(text)
        return int(text)
    except ValueError as exc:
        raise SqlParseError(f"malformed numeric literal {text!r}") from exc
