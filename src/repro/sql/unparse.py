"""Render parsed statements back to SQL text.

The inverse of :func:`repro.sql.parser.parse`, built so that

    parse(unparse(stmt)) == stmt

holds structurally for every statement the parser can produce (all AST
nodes and expression nodes are dataclasses with value equality).  The
property-based round-trip fuzz suite leans on this to prove the grammar
has no silent parse/print drift.

Conventions that make the fixed point work:

* Every compound expression is parenthesized.  The parser unwraps
  ``( expr )`` to the inner node, so extra parentheses never change the
  tree, while precedence mistakes would.
* ``BETWEEN`` and ``IN`` are desugared *at parse time* (to AND/OR chains
  of comparisons), so the unparser never needs to print them: it prints
  the desugared form, which reparses to itself.
* Identifiers are emitted verbatim — the lexer lowercases them, so any
  AST produced by the parser already holds the canonical spelling.
* String literals escape embedded quotes by doubling (``''``), matching
  the lexer.
"""

from __future__ import annotations

from ..errors import SqlError
from ..relational.expressions import (
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    IsNull,
    Like,
    Literal,
    LogicalOp,
    UnaryOp,
)
from .ast import (
    AggregateCall,
    CreateTable,
    CreateTableAs,
    Delete,
    DeployModel,
    DropTable,
    Explain,
    ExplainAnalyze,
    Insert,
    InsertSelect,
    Join,
    PredictCall,
    RollbackModel,
    Select,
    SelectItem,
    Show,
    ShowEvents,
    ShowTimeline,
    ShowWorkload,
    Star,
    Statement,
    TableRef,
    UnionAll,
    Update,
)

__all__ = ["unparse", "unparse_expression"]


def unparse(stmt: Statement) -> str:
    """One SQL statement as text; ``parse(unparse(s)) == s``."""
    if isinstance(stmt, Select):
        return _select(stmt)
    if isinstance(stmt, UnionAll):
        return " UNION ALL ".join(_select(q) for q in stmt.queries)
    if isinstance(stmt, Explain):
        return f"EXPLAIN {_select(stmt.query)}"
    if isinstance(stmt, ExplainAnalyze):
        return f"EXPLAIN ANALYZE {_select(stmt.query)}"
    if isinstance(stmt, CreateTable):
        columns = ", ".join(f"{name} {ctype.value}" for name, ctype in stmt.columns)
        return f"CREATE TABLE {stmt.name} ({columns})"
    if isinstance(stmt, CreateTableAs):
        return f"CREATE TABLE {stmt.name} AS {_select(stmt.query)}"
    if isinstance(stmt, DropTable):
        return f"DROP TABLE {stmt.name}"
    if isinstance(stmt, Insert):
        rows = ", ".join(
            "(" + ", ".join(_literal_value(v) for v in row) + ")"
            for row in stmt.rows
        )
        return f"INSERT INTO {stmt.table} VALUES {rows}"
    if isinstance(stmt, InsertSelect):
        return f"INSERT INTO {stmt.table} {_select(stmt.query)}"
    if isinstance(stmt, Delete):
        sql = f"DELETE FROM {stmt.table}"
        if stmt.where is not None:
            sql += f" WHERE {unparse_expression(stmt.where)}"
        return sql
    if isinstance(stmt, Update):
        sets = ", ".join(
            f"{col} = {unparse_expression(expr)}" for col, expr in stmt.assignments
        )
        sql = f"UPDATE {stmt.table} SET {sets}"
        if stmt.where is not None:
            sql += f" WHERE {unparse_expression(stmt.where)}"
        return sql
    if isinstance(stmt, ShowEvents):
        sql = "SHOW events"
        if stmt.where is not None:
            sql += f" WHERE {unparse_expression(stmt.where)}"
        return sql
    if isinstance(stmt, ShowTimeline):
        return f"SHOW timeline {stmt.trace_id}"
    if isinstance(stmt, ShowWorkload):
        if stmt.fingerprint is not None:
            return f"SHOW workload {_string(stmt.fingerprint)}"
        if stmt.top is not None:
            return f"SHOW workload TOP {stmt.top} BY {stmt.by}"
        return "SHOW workload"
    if isinstance(stmt, Show):
        return f"SHOW {stmt.what}"
    if isinstance(stmt, DeployModel):
        sql = f"DEPLOY MODEL {stmt.model} VERSION {stmt.version}"
        if stmt.canary_percent is not None:
            sql += f" CANARY {stmt.canary_percent:g}%"
        if stmt.shadow:
            sql += " SHADOW"
        return sql
    if isinstance(stmt, RollbackModel):
        return f"ROLLBACK MODEL {stmt.model}"
    raise SqlError(f"cannot unparse statement type {type(stmt).__name__}")


def _select(stmt: Select) -> str:
    parts = ["SELECT"]
    if stmt.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_select_item(item) for item in stmt.items))
    parts.append(f"FROM {_table_ref(stmt.table)}")
    for join in stmt.joins:
        parts.append(_join(join))
    if stmt.where is not None:
        parts.append(f"WHERE {unparse_expression(stmt.where)}")
    if stmt.group_by:
        parts.append(
            "GROUP BY " + ", ".join(unparse_expression(e) for e in stmt.group_by)
        )
        if stmt.having is not None:
            parts.append(f"HAVING {unparse_expression(stmt.having)}")
    if stmt.order_by:
        keys = ", ".join(
            unparse_expression(expr) + (" DESC" if desc else " ASC")
            for expr, desc in stmt.order_by
        )
        parts.append(f"ORDER BY {keys}")
    if stmt.limit is not None:
        parts.append(f"LIMIT {stmt.limit}")
        if stmt.offset:
            parts.append(f"OFFSET {stmt.offset}")
    return " ".join(parts)


def _select_item(item: SelectItem) -> str:
    expr = item.expr
    if isinstance(expr, Star):
        return "*"
    if isinstance(expr, AggregateCall):
        if expr.func == "COUNT_STAR":
            text = "COUNT(*)"
        else:
            assert expr.arg is not None
            text = f"{expr.func}({unparse_expression(expr.arg)})"
    elif isinstance(expr, PredictCall):
        args = "".join(f", {unparse_expression(a)}" for a in expr.args)
        if expr.proba_class is not None:
            text = f"PREDICT_PROBA({expr.model}, {expr.proba_class}{args})"
        else:
            text = f"PREDICT({expr.model}{args})"
    else:
        text = unparse_expression(expr)
    if item.alias is not None:
        text += f" AS {item.alias}"
    return text


def _table_ref(ref: TableRef) -> str:
    if ref.alias is not None:
        return f"{ref.name} AS {ref.alias}"
    return ref.name


def _join(join: Join) -> str:
    keyword = "LEFT JOIN" if join.kind == "left" else "JOIN"
    return (
        f"{keyword} {_table_ref(join.table)} "
        f"ON {unparse_expression(join.condition)}"
    )


def _literal_value(value: object) -> str:
    """A literal in INSERT ... VALUES position (negatives allowed here)."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return _string(value)
    raise SqlError(f"cannot unparse literal {value!r}")


def _string(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


def unparse_expression(expr: Expression) -> str:
    """One scalar expression, conservatively parenthesized."""
    if isinstance(expr, Literal):
        value = expr.value
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, (int, float)):
            if value < 0:
                # "-5" reparses as UnaryOp("-", Literal(5)); keep negative
                # literals representable by printing that same form.
                return f"(-{repr(type(value)(-value))})"
            return repr(value)
        if isinstance(value, str):
            return _string(value)
        raise SqlError(f"cannot unparse literal {value!r}")
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, BinaryOp):
        return (
            f"({unparse_expression(expr.left)} {expr.op} "
            f"{unparse_expression(expr.right)})"
        )
    if isinstance(expr, Comparison):
        return (
            f"({unparse_expression(expr.left)} {expr.op} "
            f"{unparse_expression(expr.right)})"
        )
    if isinstance(expr, LogicalOp):
        return (
            f"({unparse_expression(expr.left)} {expr.op.upper()} "
            f"{unparse_expression(expr.right)})"
        )
    if isinstance(expr, UnaryOp):
        if expr.op.upper() == "NOT":
            return f"(NOT {unparse_expression(expr.operand)})"
        return f"({expr.op}{unparse_expression(expr.operand)})"
    if isinstance(expr, IsNull):
        middle = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({unparse_expression(expr.operand)} {middle})"
    if isinstance(expr, Like):
        middle = "NOT LIKE" if expr.negated else "LIKE"
        return f"({unparse_expression(expr.operand)} {middle} {_string(expr.pattern)})"
    if isinstance(expr, CaseWhen):
        branches = " ".join(
            f"WHEN {unparse_expression(cond)} THEN {unparse_expression(value)}"
            for cond, value in expr.branches
        )
        default = (
            f" ELSE {unparse_expression(expr.default)}"
            if expr.default is not None
            else ""
        )
        return f"(CASE {branches}{default} END)"
    if isinstance(expr, FunctionCall):
        args = ", ".join(unparse_expression(a) for a in expr.args)
        return f"{expr.name}({args})"
    raise SqlError(f"cannot unparse expression type {type(expr).__name__}")
