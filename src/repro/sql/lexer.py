"""SQL tokenizer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import SqlLexError

KEYWORDS = frozenset(
    """
    SELECT FROM WHERE AND OR NOT AS JOIN LEFT INNER ON GROUP BY ORDER
    LIMIT OFFSET ASC DESC CREATE TABLE DROP INSERT INTO VALUES TRUE FALSE
    NULL PREDICT EXPLAIN DELETE DISTINCT BETWEEN IN IS LIKE UPDATE SET
    SHOW TABLES MODELS UNION ALL HAVING CASE WHEN THEN ELSE END
    """.split()
)

# Contextual ("soft") keywords: meaningful only in one position (directly
# after SHOW, or ANALYZE directly after EXPLAIN), and deliberately NOT in
# KEYWORDS so they stay usable as ordinary identifiers
# (``CREATE TABLE stats ...`` must keep parsing).  They lex as IDENT
# tokens; the parser special-cases them by value.
SOFT_KEYWORDS = frozenset({"METRICS", "STATS", "AUDIT", "ANALYZE"})

#: The soft keywords valid as a SHOW target.  WORKLOAD / SLO / PROFILE
#: back the workload-intelligence layer (per-fingerprint aggregates,
#: burn-rate objectives, and the sampling stage profiler); WORKLOAD is
#: parsed specially for its TOP k BY / fingerprint forms.
SHOW_TARGETS = frozenset(
    {"METRICS", "STATS", "AUDIT", "SERVER", "CLUSTER", "FAULTS", "HEALTH",
     "EVENTS", "TIMELINE", "WORKLOAD", "SLO", "PROFILE", "DEPLOYMENTS"}
)


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word.upper()


_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCT = "(),.;"


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SqlLexError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":  # line comment
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            seen_dot = False
            seen_exp = False
            while i < n:
                c = text[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    i += 1
                elif c in "eE" and not seen_exp and i > start:
                    seen_exp = True
                    i += 1
                    if i < n and text[i] in "+-":
                        i += 1
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, text[start:i], start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            if word.upper() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word.upper(), start))
            else:
                tokens.append(Token(TokenType.IDENT, word.lower(), start))
            continue
        if ch == "'":
            start = i
            i += 1
            chunks: list[str] = []
            while i < n:
                if text[i] == "'":
                    if i + 1 < n and text[i + 1] == "'":  # escaped quote
                        chunks.append("'")
                        i += 2
                        continue
                    break
                chunks.append(text[i])
                i += 1
            if i >= n:
                raise SqlLexError(f"unterminated string starting at {start}")
            i += 1  # closing quote
            tokens.append(Token(TokenType.STRING, "".join(chunks), start))
            continue
        if ch == '"':  # quoted identifier
            start = i
            i += 1
            end = text.find('"', i)
            if end < 0:
                raise SqlLexError(f"unterminated quoted identifier at {start}")
            tokens.append(Token(TokenType.IDENT, text[i:end].lower(), start))
            i = end + 1
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise SqlLexError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
