"""SQL abstract syntax.

Scalar expressions reuse :mod:`repro.relational.expressions` directly (the
parser builds :class:`~repro.relational.expressions.Expression` trees);
this module adds only the query-level nodes and the two call forms the
relational layer does not know about: aggregates and ``PREDICT``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..relational.expressions import Expression
from ..relational.schema import ColumnType


class Statement:
    """Base class for parsed statements."""


@dataclass
class CreateTable(Statement):
    name: str
    columns: list[tuple[str, ColumnType]]


@dataclass
class DropTable(Statement):
    name: str


@dataclass
class Insert(Statement):
    table: str
    rows: list[list[object]]  # literal values only


@dataclass
class InsertSelect(Statement):
    """``INSERT INTO t SELECT ...``."""

    table: str
    query: "Select"


@dataclass
class CreateTableAs(Statement):
    """``CREATE TABLE t AS SELECT ...``."""

    name: str
    query: "Select"


@dataclass
class Delete(Statement):
    """``DELETE FROM t [WHERE ...]``."""

    table: str
    where: Expression | None = None


@dataclass
class Update(Statement):
    """``UPDATE t SET col = expr [, ...] [WHERE ...]``."""

    table: str
    assignments: list[tuple[str, Expression]]
    where: Expression | None = None


@dataclass
class Star:
    """``*`` in a select list."""


@dataclass
class AggregateCall:
    """``SUM(expr)``, ``COUNT(*)``, etc."""

    func: str
    arg: Expression | None  # None means COUNT(*)


@dataclass
class PredictCall:
    """``PREDICT(model, features...)`` or
    ``PREDICT_PROBA(model, class_index, features...)``."""

    model: str
    args: list[Expression]
    proba_class: int | None = None  # None = argmax label


@dataclass
class SelectItem:
    expr: Expression | Star | AggregateCall | PredictCall
    alias: str | None = None


@dataclass
class TableRef:
    name: str
    alias: str | None = None


@dataclass
class Join:
    table: TableRef
    condition: Expression
    kind: str = "inner"  # "inner" or "left"


@dataclass
class Select(Statement):
    items: list[SelectItem]
    table: TableRef
    joins: list[Join] = field(default_factory=list)
    where: Expression | None = None
    group_by: list[Expression] = field(default_factory=list)
    order_by: list[tuple[Expression, bool]] = field(default_factory=list)  # (expr, desc)
    limit: int | None = None
    offset: int = 0
    distinct: bool = False
    having: Expression | None = None


@dataclass
class Explain(Statement):
    """EXPLAIN <select>."""

    query: Select


@dataclass
class ExplainAnalyze(Statement):
    """``EXPLAIN ANALYZE <select>``: execute the plan instrumented.

    The report annotates every relational operator with the rows it
    produced and its inclusive time, and every model inference stage with
    its representation, rows, wall time, and estimated vs actual peak
    memory (from the plan-quality audit).
    """

    query: Select


@dataclass
class Show(Statement):
    """``SHOW TABLES`` / ``MODELS`` / ``METRICS`` / ``STATS`` / ``SERVER``
    / ``CLUSTER`` / ``AUDIT`` / ``FAULTS`` / ``HEALTH``.

    CLUSTER renders the attached process pool's live state — worker
    pids, heartbeat ages, restart counts, the model placement map, and
    the ``cluster_*`` counters (empty when no cluster is attached).

    METRICS renders the session's telemetry registry as a cursor; STATS
    renders system-level statistics (buffer pool, caches, catalog sizes);
    SERVER renders the attached ModelServer's live queue/batch state
    (empty when no server is attached); AUDIT renders the plan-quality
    audit's estimate-vs-actual records; FAULTS renders the fault
    injector's sites with armed specs, hit/fire counts, and
    retry/recovery totals; HEALTH renders the aggregated resilience
    report (breaker states, recovery counters, budget utilisation,
    queue depths) with an overall status row.
    """

    what: str  # "tables", "models", "metrics", "stats", "server", "audit", "faults"


@dataclass
class ShowEvents(Statement):
    """``SHOW EVENTS [WHERE <expr>]``: query the flight recorder.

    Renders the telemetry flight recorder's retained events as a cursor
    with columns ``(seq, ts_ms, kind, trace_id, detail)``, oldest first.
    The optional WHERE clause filters against that schema with the same
    expression language as SELECT (e.g.
    ``SHOW EVENTS WHERE kind = 'request.shed'``).
    """

    where: Expression | None = None


@dataclass
class ShowWorkload(Statement):
    """``SHOW WORKLOAD [TOP k BY latency|count|bytes]`` or
    ``SHOW WORKLOAD '<fingerprint>'``.

    Renders the workload-intelligence store: one aggregated row per query
    fingerprint (normalized statement with literals stripped), or the
    per-fingerprint detail view when a fingerprint string is given.  The
    grammar only produces ``by`` together with ``top``, so the canonical
    form ``ShowWorkload()`` unparses as plain ``SHOW workload``.
    """

    top: int | None = None
    by: str = "latency"  # "latency", "count", or "bytes"
    fingerprint: str | None = None


@dataclass
class ShowTimeline(Statement):
    """``SHOW TIMELINE <trace_id>``: replay one request's lifecycle.

    Merges the trace's flight-recorder events and finished spans into a
    relative-time cursor ``(at_ms, source, what, detail)``, followed by
    summary rows breaking latency into queue vs execute vs rescue.
    """

    trace_id: int


@dataclass
class DeployModel(Statement):
    """``DEPLOY MODEL m VERSION v [CANARY x%] [SHADOW]``.

    Drives the deployment state machine (:mod:`repro.lifecycle`): a bare
    DEPLOY promotes the version immediately (one atomic snapshot swap);
    ``CANARY x%`` routes x% of fingerprint-hashed traffic to the new
    version first; ``SHADOW`` mirrors traffic to it and compares outputs
    before any client sees them.  ``SHADOW`` and ``CANARY`` compose:
    shadow runs first, then the canary stage.
    """

    model: str
    version: str
    canary_percent: float | None = None
    shadow: bool = False


@dataclass
class RollbackModel(Statement):
    """``ROLLBACK MODEL m``: cancel the in-flight deployment (canary or
    shadow) or revert the last promotion, re-pointing traffic to the
    prior version in one snapshot swap."""

    model: str


@dataclass
class UnionAll(Statement):
    """``<select> UNION ALL <select> [...]`` (bag semantics)."""

    queries: list[Select]
