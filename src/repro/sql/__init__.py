"""A small SQL dialect with a ``PREDICT`` table function.

Enough SQL to express the paper's inference queries::

    SELECT id, PREDICT(fraud_model, f0, f1, ..., f27) AS score
    FROM transactions
    WHERE f0 > 0.5

plus CREATE TABLE, INSERT ... VALUES, joins, aggregates, ORDER BY and
LIMIT.  ``PREDICT`` routes through the adaptive optimizer, so the same
query text can execute DL-centric, UDF-centric, relation-centric, or a
mix, depending on operator sizes.
"""

from .lexer import Token, TokenType, tokenize
from .ast import (
    AggregateCall,
    CreateTable,
    DropTable,
    Explain,
    Insert,
    Join,
    PredictCall,
    Select,
    SelectItem,
    Star,
    Statement,
    TableRef,
)
from .parser import parse
from .planner import Planner, PredictFunction
from .unparse import unparse, unparse_expression

__all__ = [
    "tokenize",
    "Token",
    "TokenType",
    "parse",
    "unparse",
    "unparse_expression",
    "Statement",
    "CreateTable",
    "DropTable",
    "Explain",
    "Insert",
    "Select",
    "SelectItem",
    "TableRef",
    "Join",
    "Star",
    "AggregateCall",
    "PredictCall",
    "Planner",
    "PredictFunction",
]
