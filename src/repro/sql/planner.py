"""Translating SQL ASTs into physical operator trees.

``PREDICT`` items do not evaluate like scalar expressions: the planner
assembles a feature matrix per batch and routes it to a *predict
function* supplied by the session, which is where the adaptive optimizer
and the hybrid executor take over.  The relational part of the query and
the inference part therefore share one operator tree — the premise of the
paper's unified architecture.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from ..errors import BindError, PlanError
from ..relational.expressions import ColumnRef, Comparison, Expression, LogicalOp
from ..relational.operators import (
    Aggregate,
    AggregateSpec,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    MapRows,
    NestedLoopJoin,
    Operator,
    Project,
    SeqScan,
    Sort,
    SortKey,
)
from ..relational.schema import Column, ColumnType, Schema
from ..storage.catalog import Catalog
from ..telemetry import DISABLED, Telemetry
from .ast import AggregateCall, Join, PredictCall, Select, SelectItem, Star, TableRef

# (model name, feature matrix, proba class or None) -> predictions:
# integer labels when proba class is None, class probabilities otherwise.
PredictFunction = Callable[[str, np.ndarray, "int | None"], np.ndarray]


def filter_rows(
    schema: Schema, rows: list[tuple], where: Expression | None
) -> list[tuple]:
    """Filter materialised rows with a bound WHERE expression.

    The system-view statements (``SHOW EVENTS WHERE ...``) expose
    telemetry rings as relations; this binds the predicate against the
    view's schema — the same expression language and coercion rules as a
    table scan — and keeps the rows where it evaluates truthy.
    """
    if where is None:
        return rows
    bound = where.bind(schema)
    return [row for row in rows if bound.eval(row)]


class Planner:
    """Builds physical plans against a catalog."""

    def __init__(
        self,
        catalog: Catalog,
        predict_fn: PredictFunction | None = None,
        predict_batch_size: int = 1024,
        telemetry: Telemetry | None = None,
    ):
        self._catalog = catalog
        self._predict_fn = predict_fn
        self._batch_size = predict_batch_size
        self._telemetry = telemetry if telemetry is not None else DISABLED
        self._m_plans = self._telemetry.registry.counter(
            "planner_selects_total", "SELECT statements planned"
        )

    def plan_select(self, stmt: Select) -> Operator:
        with self._telemetry.tracer.span("plan", category="sql"):
            self._m_plans.inc()
            return self._plan_select(stmt)

    def _plan_select(self, stmt: Select) -> Operator:
        source = self._plan_from(stmt)
        if stmt.where is not None:
            source = Filter(source, stmt.where)
        has_aggregates = stmt.group_by or any(
            isinstance(item.expr, AggregateCall) for item in stmt.items
        )
        has_predict = any(isinstance(item.expr, PredictCall) for item in stmt.items)
        if has_aggregates and has_predict:
            raise PlanError("PREDICT cannot be combined with aggregation")
        sorted_early = False
        if stmt.order_by and not has_aggregates and not has_predict:
            # Prefer sorting before the projection so ORDER BY can use
            # columns the projection drops; fall back to sorting the
            # output when the keys reference projection aliases.
            if _keys_bind(stmt.order_by, source.schema):
                source = Sort(
                    source, [SortKey(expr, desc) for expr, desc in stmt.order_by]
                )
                sorted_early = True
        if has_aggregates:
            op = self._plan_aggregate(stmt, source)
            if stmt.having is not None:
                op = Filter(op, stmt.having)
        elif has_predict:
            op = self._plan_predict(stmt, source)
        else:
            op = self._plan_projection(stmt, source)
        if stmt.distinct:
            op = Distinct(op)
        if stmt.order_by and not sorted_early:
            op = Sort(op, [SortKey(expr, desc) for expr, desc in stmt.order_by])
        if stmt.limit is not None:
            op = Limit(op, stmt.limit, stmt.offset)
        return op

    # -- FROM / JOIN -----------------------------------------------------

    def _scan(self, ref: TableRef, qualify: bool) -> Operator:
        info = self._catalog.get_table(ref.name)
        alias = ref.alias or (ref.name if qualify else None)
        return SeqScan(info, alias=alias)

    def _plan_from(self, stmt: Select) -> Operator:
        qualify = bool(stmt.joins)
        source = self._scan(stmt.table, qualify)
        for join in stmt.joins:
            right = self._scan(join.table, qualify=True)
            source = self._plan_join(source, right, join)
        return source

    def _plan_join(self, left: Operator, right: Operator, join: Join) -> Operator:
        keys = _equi_keys(join.condition, left.schema, right.schema)
        if keys is not None:
            left_keys, right_keys = keys
            if join.kind == "inner" and _estimated_rows(right) is not None:
                left_rows = _estimated_rows(left)
                right_rows = _estimated_rows(right)
                if left_rows is not None and right_rows < left_rows:
                    # Build on the smaller input (catalog cardinalities),
                    # then restore the written column order.
                    swapped = HashJoin(
                        right, left, right_keys, left_keys, join_type="inner"
                    )
                    original_order = list(left.schema.names) + list(
                        right.schema.names
                    )
                    return Project(
                        swapped, [(ColumnRef(n), n) for n in original_order]
                    )
            return HashJoin(left, right, left_keys, right_keys, join_type=join.kind)
        if join.kind != "inner":
            raise PlanError("LEFT JOIN requires an equality condition")
        return NestedLoopJoin(left, right, join.condition)

    # -- projection / aggregation / prediction -----------------------------

    def _plan_projection(self, stmt: Select, source: Operator) -> Operator:
        items: list[tuple[Expression, str]] = []
        for i, item in enumerate(stmt.items):
            if isinstance(item.expr, Star):
                for name in source.schema.names:
                    items.append((ColumnRef(name), name.split(".")[-1]))
            else:
                assert isinstance(item.expr, Expression)
                items.append((item.expr, _output_name(item, i)))
        return Project(source, items)

    def _plan_aggregate(self, stmt: Select, source: Operator) -> Operator:
        group_by: list[tuple[Expression, str]] = []
        specs: list[AggregateSpec] = []
        output_order: list[str] = []
        for i, item in enumerate(stmt.items):
            name = _output_name(item, i)
            if isinstance(item.expr, AggregateCall):
                specs.append(AggregateSpec(item.expr.func, item.expr.arg, name))
            elif isinstance(item.expr, Expression):
                if not any(item.expr == g for g in stmt.group_by):
                    raise PlanError(
                        f"select item {name!r} is neither aggregated nor in "
                        "GROUP BY"
                    )
                group_by.append((item.expr, name))
            else:
                raise PlanError("SELECT * cannot be combined with aggregation")
            output_order.append(name)
        # Group-by expressions that are not selected still shape the groups.
        selected = {name for __, name in group_by}
        for g_expr in stmt.group_by:
            if not any(g_expr == expr for expr, __ in group_by):
                hidden = f"__group_{len(group_by)}"
                group_by.append((g_expr, hidden))
        agg = Aggregate(source, group_by, specs)
        if list(agg.schema.names) != output_order:
            return Project(agg, [(ColumnRef(n), n) for n in output_order])
        return agg

    def _plan_predict(self, stmt: Select, source: Operator) -> Operator:
        if self._predict_fn is None:
            raise PlanError("this session has no PREDICT executor configured")
        schema = source.schema
        plain: list[tuple[int, Expression, str]] = []  # (output slot, expr, name)
        predicts: list[tuple[int, PredictCall, str]] = []
        slot = 0
        output_columns: list[Column] = []
        for i, item in enumerate(stmt.items):
            name = _output_name(item, i)
            if isinstance(item.expr, Star):
                raise PlanError("SELECT * cannot be combined with PREDICT")
            if isinstance(item.expr, PredictCall):
                if not self._catalog.has_model(item.expr.model):
                    raise BindError(f"no model named {item.expr.model!r}")
                predicts.append((slot, item.expr, name))
                ctype = (
                    ColumnType.INT
                    if item.expr.proba_class is None
                    else ColumnType.DOUBLE
                )
                output_columns.append(Column(name, ctype))
            else:
                assert isinstance(item.expr, Expression)
                plain.append((slot, item.expr, name))
                bound_probe = item.expr.bind(schema)
                output_columns.append(Column(name, bound_probe.ctype))
            slot += 1
        plain_bound = [(s, expr.bind(schema)) for s, expr, __ in plain]
        predict_bound = [
            (
                s,
                call.model,
                [arg.bind(schema) for arg in call.args],
                call.proba_class,
            )
            for s, call, __ in predicts
        ]
        width = slot
        predict_fn = self._predict_fn

        def predict_udf(batch: list[tuple]) -> Iterator[tuple]:
            out_rows = [[None] * width for __ in batch]
            for s, bound in plain_bound:
                for row_idx, row in enumerate(batch):
                    out_rows[row_idx][s] = bound.eval(row)
            for s, model_name, args, proba_class in predict_bound:
                features = np.array(
                    [[arg.eval(row) for arg in args] for row in batch],
                    dtype=np.float64,
                )
                outputs = predict_fn(model_name, features, proba_class)
                convert = float if proba_class is not None else int
                for row_idx, value in enumerate(outputs):
                    out_rows[row_idx][s] = convert(value)
            for out in out_rows:
                yield tuple(out)

        model_names = ", ".join(call.model for __, call, __n in predicts)
        return MapRows(
            source,
            predict_udf,
            Schema(output_columns),
            batch_size=self._batch_size,
            label=f"predict({model_names})",
        )


def predict_models(stmt: Select) -> list[str]:
    """The model names a SELECT invokes through PREDICT, in select order.

    Used by EXPLAIN/EXPLAIN ANALYZE to attach each inference plan (and
    its per-stage audit) to the relational plan report.
    """
    return [
        item.expr.model
        for item in stmt.items
        if isinstance(item.expr, PredictCall)
    ]


def _output_name(item: SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    expr = item.expr
    if isinstance(expr, ColumnRef):
        return expr.name.split(".")[-1].lower()
    if isinstance(expr, AggregateCall):
        return expr.func.lower()
    if isinstance(expr, PredictCall):
        return "prediction"
    return f"col{index}"


def _equi_keys(
    condition: Expression, left_schema: Schema, right_schema: Schema
) -> tuple[list[Expression], list[Expression]] | None:
    """Extract hash-join keys from a conjunction of column equalities."""
    conjuncts = _flatten_and(condition)
    left_keys: list[Expression] = []
    right_keys: list[Expression] = []
    for conjunct in conjuncts:
        if not (
            isinstance(conjunct, Comparison)
            and conjunct.op in ("=", "==")
            and isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, ColumnRef)
        ):
            return None
        sides = []
        for ref in (conjunct.left, conjunct.right):
            if _binds(ref, left_schema):
                sides.append("left")
            elif _binds(ref, right_schema):
                sides.append("right")
            else:
                return None
        if sides == ["left", "right"]:
            left_keys.append(conjunct.left)
            right_keys.append(conjunct.right)
        elif sides == ["right", "left"]:
            left_keys.append(conjunct.right)
            right_keys.append(conjunct.left)
        else:
            return None
    return left_keys, right_keys


def _estimated_rows(op: Operator) -> int | None:
    """Catalog cardinality for base-table scans; None when unknown."""
    estimate = getattr(op, "estimated_rows", None)
    return int(estimate) if estimate is not None else None


def _keys_bind(
    order_by: list[tuple[Expression, bool]], schema: Schema
) -> bool:
    try:
        for expr, __ in order_by:
            expr.bind(schema)
        return True
    except BindError:
        return False


def _flatten_and(expr: Expression) -> list[Expression]:
    if isinstance(expr, LogicalOp) and expr.op.upper() == "AND":
        return _flatten_and(expr.left) + _flatten_and(expr.right)
    return [expr]


def _binds(ref: ColumnRef, schema: Schema) -> bool:
    try:
        ref.bind(schema)
        return True
    except BindError:
        return False
