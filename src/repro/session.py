"""The public entry point: an embedded database that serves DL models.

:class:`Database` wires together the storage engine, the SQL front end,
the model catalog, the AoT compiler, and the hybrid executor::

    from repro import Database
    from repro.models import fraud_fc_256

    db = Database()
    db.execute("CREATE TABLE tx (id INT, f0 DOUBLE, ..., label INT)")
    db.load_rows("tx", rows)
    db.register_model(fraud_fc_256(), name="fraud")
    cur = db.execute("SELECT id, PREDICT(fraud, f0, ...) AS p FROM tx")

``PREDICT`` calls run through the rule-based adaptive optimizer: each
lowered operator picks the UDF-centric or relation-centric representation
by the paper's memory-threshold rule (DL-centric offload can be forced or
chosen by SLA policies).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from .config import DEFAULT_CONFIG, SystemConfig
from .core.compiler import AotCompiler, CompiledModel
from .core.ir import InferencePlan, Representation
from .core.optimizer import RuleBasedOptimizer
from .dlruntime.layers import Model
from .dlruntime.memory import MemoryBudget
from .engines.base import EngineResult
from .engines.hybrid import HybridExecutor
from .errors import CatalogError, ReproError, SqlError
from .faults import FAULT_COLUMNS, FaultInjector, FaultPlan
from .health import HEALTH_COLUMNS, HealthReport
from .health import collect as collect_health
from .lifecycle import DEPLOYMENT_COLUMNS, DeploymentController, ModelCatalog
from .lifecycle.routing import routed_predict
from .relational.schema import ColumnType, Schema
from .resilience import RecoveryLedger
from .server.locks import ReadWriteLock
from .sql import ast as sql_ast
from .sql.parser import parse
from .sql.planner import Planner, filter_rows, predict_models
from .storage.buffer_pool import (
    BufferPool,
    ClockPolicy,
    EvictionPolicy,
    LruPolicy,
    TwoQueuePolicy,
)
from .storage.catalog import Catalog, ModelInfo
from .storage.disk import FileDiskManager, InMemoryDiskManager
from .telemetry import (
    AUDIT_COLUMNS,
    EVENT_COLUMNS,
    PROFILE_COLUMNS,
    SLO_COLUMNS,
    TIMELINE_COLUMNS,
    WORKLOAD_COLUMNS,
    QueryStats,
    StageAudit,
    Telemetry,
    timeline_rows,
)
from .telemetry.events import NULL_RECORDER

#: Relational schema of the ``SHOW EVENTS`` system view (what a WHERE
#: clause binds against).
_EVENTS_SCHEMA = Schema.of(
    ("seq", ColumnType.INT),
    ("ts_ms", ColumnType.DOUBLE),
    ("kind", ColumnType.TEXT),
    ("trace_id", ColumnType.INT),
    ("detail", ColumnType.TEXT),
)


@dataclass
class _VectorIndexEntry:
    """Session-side metadata for one ANN index over a table column."""

    table: str
    column: str
    kind: str
    index: object | None = None
    rids: list = field(default_factory=list)


def _render_inference_stages(
    models: list[str], audits: list[StageAudit], audit_enabled: bool
) -> list[str]:
    """The EXPLAIN ANALYZE section covering model inference stages.

    One PREDICT statement runs its plan once per planner batch, so the
    per-batch audit records are aggregated by (model, stage): rows and
    time sum, the actual peak is the worst batch, and the verdict is the
    worst batch's verdict (any misprediction wins over ``ok``).
    """
    lines = ["", f"inference stages (predict: {', '.join(models)}):"]
    if not audit_enabled:
        lines.append("  (telemetry disabled: no estimate-vs-actual audit)")
        return lines
    if not audits:
        lines.append("  (no inference stages executed)")
        return lines
    grouped: dict[tuple[str, int], list[StageAudit]] = {}
    for audit in audits:
        grouped.setdefault((audit.model, audit.stage_index), []).append(audit)
    for (model, idx), batch_audits in sorted(grouped.items()):
        first = batch_audits[0]
        rows = sum(a.rows for a in batch_audits)
        seconds = sum(a.elapsed_seconds for a in batch_audits)
        actual = max(a.actual_peak_bytes for a in batch_audits)
        estimated = max(a.estimated_bytes for a in batch_audits)
        flagged = [a for a in batch_audits if a.mispredicted]
        verdict = flagged[0].verdict if flagged else "ok"
        lines.append(
            f"  {model} stage{idx} [{first.representation}]({first.ops})  "
            f"[rows={rows}, time={seconds * 1e3:.2f}ms, "
            f"est={estimated}B, actual={actual}B, verdict={verdict}]"
        )
    return lines


def _make_policy(name: str) -> EvictionPolicy:
    if name == "clock":
        return ClockPolicy()
    if name == "2q":
        return TwoQueuePolicy()
    return LruPolicy()


@dataclass
class Cursor:
    """A fully-materialized query result.

    When telemetry is enabled, ``stats`` carries the
    :class:`~repro.telemetry.QueryStats` for the statement that produced
    this cursor (rows, wall-clock time, buffer-pool and result-cache
    deltas, engine seconds, representations executed).
    """

    columns: tuple[str, ...]
    rows: list[tuple]
    stats: QueryStats | None = None

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def fetchall(self) -> list[tuple]:
        return list(self.rows)

    def fetchone(self) -> tuple | None:
        return self.rows[0] if self.rows else None

    def column(self, name: str) -> list[object]:
        idx = self.columns.index(name.lower())
        return [row[idx] for row in self.rows]


#: Statement types that only read state; they share the database's read
#: lock.  Everything else (DDL/DML) takes the write lock exclusively.
_READ_STATEMENTS = (
    sql_ast.Select,
    sql_ast.Show,
    sql_ast.ShowEvents,
    sql_ast.ShowTimeline,
    sql_ast.ShowWorkload,
    sql_ast.Explain,
    sql_ast.ExplainAnalyze,
    sql_ast.UnionAll,
)

#: Lifecycle statements also run on the read side: the deployment
#: controller serializes its own writers on a private mutation lock and
#: publishes every routing change as one atomic snapshot swap, so
#: DEPLOY/ROLLBACK never block — or wait on — serving traffic.
_LIFECYCLE_STATEMENTS = (
    sql_ast.DeployModel,
    sql_ast.RollbackModel,
)


class Database:
    """An embedded RDBMS with in-database model serving.

    **Concurrency contract** (enforced by an internal
    :class:`~repro.server.locks.ReadWriteLock`): reads — SELECT,
    PREDICT via :meth:`predict`/:meth:`predict_labels`, SHOW, EXPLAIN,
    :meth:`vector_search` — may run concurrently from many threads.
    DDL/DML statements and administrative mutations (``register_model``,
    ``set_option``, ``create_vector_index``, ``enable_result_cache``,
    ``load_rows``, ``close``) serialize exclusively against everything
    else.  The serving front-end (:meth:`serve`) relies on this: its
    worker pool executes batched PREDICTs under the shared read side.
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        path: str | None = None,
        fault_plan: FaultPlan | None = None,
        **config_overrides: object,
    ):
        base = config if config is not None else DEFAULT_CONFIG
        self._config = (
            base.with_options(**config_overrides) if config_overrides else base
        )
        self._path = path
        self._telemetry = Telemetry(
            enabled=self._config.telemetry_enabled,
            max_spans=self._config.telemetry_max_spans,
            max_audit_records=self._config.audit_max_records,
            max_events=self._config.telemetry_max_events,
            workload_max_fingerprints=self._config.workload_max_fingerprints,
            workload_regression_factor=self._config.workload_regression_factor,
            workload_regression_warmup=self._config.workload_regression_warmup,
            workload_regression_min_ms=self._config.workload_regression_min_ms,
            page_size=self._config.page_size,
            slo_fast_window_s=self._config.slo_fast_window_s,
            slo_slow_window_s=self._config.slo_slow_window_s,
            slo_min_samples=self._config.slo_min_samples,
            slo_burn_threshold=self._config.slo_burn_threshold,
            slo_latency_ms=self._config.slo_latency_ms,
            slo_error_budget=self._config.slo_error_budget,
            profiler_interval_ms=self._config.profiler_interval_ms,
            profiler_max_stages=self._config.profiler_max_stages,
        )
        if self._config.profiler_enabled:
            self._telemetry.profiler.start()
        registry = self._telemetry.registry
        self._m_queries = registry.counter(
            "queries_total", "SQL statements executed"
        )
        self._m_query_seconds = registry.histogram(
            "query_seconds", "End-to-end statement latency"
        )
        self._m_plan_selections = {
            rep: registry.counter(
                "optimizer_plan_selections_total",
                "Plan stages selected at query time, by representation",
                representation=rep.value,
            )
            for rep in Representation
        }
        self._m_index_builds = registry.counter(
            "vector_index_builds_total", "ANN index builds/refreshes"
        )
        self._m_index_searches = registry.counter(
            "vector_index_searches_total", "ANN index searches"
        )
        # The fault injector exists before any component that can fail, so
        # a plan passed at construction covers the restore path too.
        self._faults = FaultInjector(
            seed=self._config.faults_seed or self._config.seed,
            metrics=registry if self._telemetry.enabled else None,
        )
        if self._telemetry.enabled:
            self._faults.recorder = self._telemetry.events
        if fault_plan is not None:
            self._faults.load_plan(fault_plan)
        if path is not None:
            self._disk = FileDiskManager(
                self._config.page_size, path=path, injector=self._faults
            )
        else:
            self._disk = InMemoryDiskManager(
                self._config.page_size, injector=self._faults
            )
        self._pool = BufferPool(
            self._disk,
            self._config.buffer_pool_pages,
            policy=_make_policy(self._config.eviction_policy),
            metrics=registry if self._telemetry.enabled else None,
            injector=self._faults,
        )
        self._catalog = Catalog(self._pool)
        # Lifecycle tier: the copy-on-write versioned catalog (readers
        # pin immutable generation-stamped snapshots; deploys publish via
        # a single pointer swap) and the deployment state machine behind
        # DEPLOY / ROLLBACK / SHOW DEPLOYMENTS.
        self._lifecycle = ModelCatalog(
            injector=self._faults,
            recorder=(
                self._telemetry.events
                if self._telemetry.enabled
                else NULL_RECORDER
            ),
        )
        self._deployments = DeploymentController(self)
        # Rescues the executor performs feed the optimizer's next plan;
        # the ledger survives set_option() planning rebuilds on purpose.
        self._ledger = RecoveryLedger(
            threshold=self._config.resilience_ledger_threshold
        )
        self._compiled: dict[str, CompiledModel] = {}
        self._caches: dict[str, object] = {}
        self._vector_indexes: dict[str, _VectorIndexEntry] = {}
        self._rwlock = ReadWriteLock()
        self._server = None  # attached ModelServer, if any
        self._cluster = None  # attached ClusterPool, if any
        self._rebuild_planning()
        if path is not None:
            self._restore_if_persisted(path)

    def _restore_if_persisted(self, path: str) -> None:
        from .storage import persist

        snapshot = persist.load_sidecar(
            persist.sidecar_path(path),
            injector=self._faults,
            recorder=self._telemetry.events if self._telemetry.enabled else None,
        )
        if snapshot is None:
            return
        persist.restore_catalog(self._catalog, snapshot)
        for info in self._catalog.models():
            self._compiled[info.name] = self._compiler.compile(info.model)
            # Version keys ("name@version") come back as plain catalog
            # entries; routing state is session-scoped, so every restored
            # model serves its base version until redeployed.
            if "@" not in info.name:
                self._lifecycle.register_base(info.name)

    # -- configuration ------------------------------------------------------

    @property
    def config(self) -> SystemConfig:
        return self._config

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    @property
    def buffer_pool(self) -> BufferPool:
        return self._pool

    @property
    def faults(self) -> FaultInjector:
        """The session's fault injector (arm specs / load plans here)."""
        return self._faults

    @property
    def recovery_ledger(self) -> RecoveryLedger:
        """Rescue counts the optimizer consults (see :mod:`repro.resilience`)."""
        return self._ledger

    def health(self) -> HealthReport:
        """An aggregated resilience snapshot (see :mod:`repro.health`).

        Folds circuit-breaker states, recovery counters, memory-budget
        utilisation, server queue depths, and armed faults into one
        report; also refreshes the ``health_*`` metrics.  The same rows
        back the ``SHOW HEALTH`` SQL statement.
        """
        return collect_health(self)

    # -- telemetry -------------------------------------------------------

    @property
    def telemetry(self) -> Telemetry:
        """The session's telemetry bundle (registry + tracer)."""
        return self._telemetry

    def metrics_text(self) -> str:
        """The metrics registry in the Prometheus text exposition format."""
        return self._telemetry.registry.render_prometheus()

    def export_trace(self, path: str) -> int:
        """Write recorded query spans as Chrome-trace JSON.

        Load the file at ``chrome://tracing`` or https://ui.perfetto.dev.
        Returns the number of events written (0 with telemetry disabled,
        which still produces a valid empty trace file).
        """
        return self._telemetry.tracer.export_chrome_trace(path)

    def set_slo(
        self,
        model: str,
        latency_ms: float = 0.0,
        error_budget: float = 0.01,
    ) -> None:
        """Declare a per-model service-level objective.

        A served request counts against ``model``'s error budget when it
        fails or finishes slower than ``latency_ms`` (0 disables the
        latency component).  Burn rates over the fast/slow windows back
        ``SHOW SLO``, fold into :meth:`health`, and emit
        ``slo.burn_start`` / ``slo.burn_stop`` flight-recorder events.
        No-op with telemetry disabled.
        """
        self._telemetry.slo.set_policy(model, latency_ms, error_budget)

    def start_profiler(self) -> bool:
        """Start the sampling stage profiler (see ``SHOW PROFILE``).

        Returns False if already running or telemetry is disabled.
        """
        return self._telemetry.profiler.start()

    def stop_profiler(self) -> bool:
        """Stop the sampling stage profiler (samples are kept)."""
        return self._telemetry.profiler.stop()

    def export_profile(self, path: str) -> int:
        """Write the stage profile in collapsed-stack (folded) format.

        One ``frames count`` line per sampled stage, directly consumable
        by ``flamegraph.pl`` or speedscope.  Returns the number of lines
        written (0 with telemetry disabled or nothing sampled, which
        still produces a valid empty file).
        """
        lines = self._telemetry.profiler.collapsed()
        with open(path, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")
        return len(lines)

    def _system_stats_rows(self) -> list[tuple[str, object]]:
        """Rows for ``SHOW STATS``: one (stat, value) pair per line.

        Sections that depend on an optional facility contribute zero rows
        rather than raising when that facility is off: the ``telemetry.*``
        and ``audit.*`` rows appear only with telemetry enabled, and the
        ``server.*`` rows only while a :class:`~repro.server.ModelServer`
        is attached.
        """
        pool = self._pool.stats
        rows: list[tuple[str, object]] = [
            ("bufferpool.capacity_pages", self._pool.capacity),
            ("bufferpool.resident_pages", self._pool.resident_pages),
            ("bufferpool.pinned_pages", self._pool.pinned_page_count()),
            ("bufferpool.hits", pool.hits),
            ("bufferpool.misses", pool.misses),
            ("bufferpool.hit_rate", round(pool.hit_rate, 6)),
            ("bufferpool.evictions", pool.evictions),
            ("bufferpool.dirty_writebacks", pool.dirty_writebacks),
            ("catalog.tables", len(list(self._catalog.tables()))),
            ("catalog.models", len(list(self._catalog.models()))),
            ("config.eviction_policy", self._config.eviction_policy),
            ("config.memory_threshold_bytes", self._config.memory_threshold_bytes),
            ("config.telemetry_enabled", self._config.telemetry_enabled),
        ]
        if self._telemetry.enabled:
            rows.extend(
                [
                    (
                        "telemetry.spans_recorded",
                        len(self._telemetry.tracer.finished),
                    ),
                    ("telemetry.spans_dropped", self._telemetry.tracer.dropped),
                    ("telemetry.events_recorded", len(self._telemetry.events)),
                    (
                        "telemetry.events_emitted",
                        self._telemetry.events.emitted_total,
                    ),
                    ("telemetry.events_dropped", self._telemetry.events.dropped),
                    ("audit.records", len(self._telemetry.audit)),
                    ("audit.records_total", self._telemetry.audit.total_recorded),
                    (
                        "audit.mispredictions",
                        len(self._telemetry.audit.mispredictions()),
                    ),
                    ("workload.fingerprints", len(self._telemetry.workload)),
                    (
                        "workload.recorded",
                        self._telemetry.workload.recorded_total,
                    ),
                    ("workload.evicted", self._telemetry.workload.evicted_total),
                    (
                        "workload.regressions",
                        self._telemetry.workload.regressions_total(),
                    ),
                    ("slo.models", len(self._telemetry.slo.policies())),
                    ("profiler.running", self._telemetry.profiler.running),
                    ("profiler.samples", self._telemetry.profiler.sampled),
                ]
            )
        if self._server is not None:
            rows.extend(self._server.stats_rows())
        if self._cluster is not None:
            rows.extend(self._cluster.stats_rows())
        if self._faults.active:
            rows.extend(
                [
                    ("faults.armed", self._faults.armed_count),
                    ("faults.injected", self._faults.injected_total),
                    ("faults.retries", self._faults.retry_total),
                    ("faults.recoveries", self._faults.recovery_total),
                ]
            )
        for name, cache in sorted(self._caches.items()):
            stats = cache.stats
            rows.append((f"result_cache.{name}.entries", len(cache)))
            rows.append((f"result_cache.{name}.hits", stats.hits))
            rows.append((f"result_cache.{name}.misses", stats.misses))
            rows.append((f"result_cache.{name}.hit_rate", round(stats.hit_rate, 6)))
        for name, entry in sorted(self._vector_indexes.items()):
            rows.append((f"vector_index.{name}.kind", entry.kind))
            rows.append((f"vector_index.{name}.vectors", len(entry.rids)))
        return rows

    def set_option(self, name: str, value: object) -> None:
        """Change a planning option (e.g. ``memory_threshold_bytes``).

        Invalidates pre-compiled plans, since representation choices may
        change.
        """
        with self._rwlock.write():
            self._config = self._config.with_options(**{name: value})
            self._rebuild_planning()
            for model_name in list(self._compiled):
                self._compiled[model_name] = self._compiler.compile(
                    self._catalog.get_model(model_name).model
                )

    def _rebuild_planning(self) -> None:
        self._ledger.threshold = self._config.resilience_ledger_threshold
        self._optimizer = RuleBasedOptimizer(
            self._config, telemetry=self._telemetry, ledger=self._ledger
        )
        self._compiler = AotCompiler(
            self._config, telemetry=self._telemetry, ledger=self._ledger
        )
        self._executor = HybridExecutor(
            self._catalog,
            self._config,
            telemetry=self._telemetry,
            injector=self._faults,
            ledger=self._ledger,
        )
        self._planner = Planner(
            self._catalog,
            predict_fn=self._predict_labels,
            telemetry=self._telemetry,
        )

    # -- SQL ------------------------------------------------------------

    def execute(self, sql: str) -> Cursor:
        """Parse and execute one SQL statement.

        With telemetry enabled the statement runs under nested
        ``query -> parse / plan / execute`` spans and the returned
        cursor's ``stats`` holds the per-query counter deltas.
        """
        telemetry = self._telemetry
        if not telemetry.enabled:
            stmt = parse(sql)
            with self._statement_lock(stmt):
                return self._execute_statement(stmt)
        tracer = telemetry.tracer
        pool = self._pool.stats
        pool_before = (pool.hits, pool.misses, pool.evictions)
        cache_before = self._cache_totals()
        engine_before = self._executor._m_engine_seconds.value
        stage_before = {
            rep: counter.value
            for rep, counter in self._executor._m_stage_runs.items()
        }
        audit_marker = telemetry.audit.marker()
        start = time.perf_counter()
        with tracer.span("query", category="sql", sql=sql.strip()[:200]) as query_span:
            with tracer.span("parse", category="sql"):
                stmt = parse(sql)
            with self._statement_lock(stmt):
                if isinstance(stmt, sql_ast.Select):
                    op = self._planner.plan_select(stmt)  # emits the "plan" span
                    with tracer.span("execute", category="sql", statement="Select"):
                        cursor = Cursor(op.schema.names, list(op))
                else:
                    with tracer.span(
                        "execute", category="sql", statement=type(stmt).__name__
                    ):
                        cursor = self._execute_statement(stmt)
        elapsed = time.perf_counter() - start
        self._m_queries.inc()
        self._m_query_seconds.observe(elapsed)
        cache_after = self._cache_totals()
        representations = {
            rep.value: int(counter.value - stage_before[rep])
            for rep, counter in self._executor._m_stage_runs.items()
            if counter.value > stage_before[rep]
        }
        cursor.stats = QueryStats(
            sql=sql,
            statement=type(stmt).__name__,
            rows=len(cursor.rows),
            elapsed_seconds=elapsed,
            pool_hits=pool.hits - pool_before[0],
            pool_misses=pool.misses - pool_before[1],
            pool_evictions=pool.evictions - pool_before[2],
            cache_hits=cache_after[0] - cache_before[0],
            cache_misses=cache_after[1] - cache_before[1],
            engine_seconds=self._executor._m_engine_seconds.value - engine_before,
            representations=representations,
            stage_audits=telemetry.audit.records_since(audit_marker),
            trace_id=query_span.trace_id,
        )
        telemetry.workload.record(stmt, cursor.stats)
        return cursor

    def _statement_lock(self, stmt: sql_ast.Statement):
        """Read lock for queries, write lock for DDL/DML (the contract)."""
        if isinstance(stmt, _READ_STATEMENTS + _LIFECYCLE_STATEMENTS):
            return self._rwlock.read()
        return self._rwlock.write()

    def _cache_totals(self) -> tuple[int, int]:
        hits = misses = 0
        for cache in self._caches.values():
            hits += cache.stats.hits
            misses += cache.stats.misses
        return hits, misses

    def _execute_statement(self, stmt: sql_ast.Statement) -> Cursor:
        if isinstance(stmt, sql_ast.CreateTable):
            schema = Schema.of(*stmt.columns)
            self._catalog.create_table(stmt.name, schema)
            return Cursor((), [])
        if isinstance(stmt, sql_ast.DropTable):
            self._catalog.drop_table(stmt.name)
            return Cursor((), [])
        if isinstance(stmt, sql_ast.Insert):
            info = self._catalog.get_table(stmt.table)
            for row in stmt.rows:
                info.heap.insert(info.schema.coerce_row(row))
                info.row_count += 1
            return Cursor((), [])
        if isinstance(stmt, sql_ast.InsertSelect):
            info = self._catalog.get_table(stmt.table)
            op = self._planner.plan_select(stmt.query)
            if len(op.schema) != len(info.schema):
                raise SqlError(
                    f"INSERT INTO {stmt.table}: query yields "
                    f"{len(op.schema)} columns, table has {len(info.schema)}"
                )
            count = 0
            for row in op:
                info.heap.insert(info.schema.coerce_row(row))
                count += 1
            info.row_count += count
            return Cursor((), [])
        if isinstance(stmt, sql_ast.CreateTableAs):
            op = self._planner.plan_select(stmt.query)
            info = self._catalog.create_table(stmt.name, op.schema)
            count = 0
            for row in op:
                info.heap.insert(info.schema.coerce_row(row))
                count += 1
            info.row_count = count
            return Cursor((), [])
        if isinstance(stmt, sql_ast.Update):
            info = self._catalog.get_table(stmt.table)
            schema = info.schema
            predicate = (
                stmt.where.bind(schema) if stmt.where is not None else None
            )
            bound = [
                (schema.index_of(col), expr.bind(schema))
                for col, expr in stmt.assignments
            ]
            changed = []
            for rid, row in info.heap.scan():
                if predicate is not None and not predicate.eval(row):
                    continue
                new_row = list(row)
                for idx, expr in bound:
                    new_row[idx] = expr.eval(row)
                changed.append((rid, schema.coerce_row(new_row)))
            # Updates are delete + re-insert (slotted pages do not resize
            # records in place); row identity is not stable across UPDATE.
            for rid, new_row in changed:
                info.heap.delete(rid)
                info.heap.insert(new_row)
            return Cursor(("updated",), [(len(changed),)])
        if isinstance(stmt, sql_ast.Delete):
            info = self._catalog.get_table(stmt.table)
            predicate = (
                stmt.where.bind(info.schema) if stmt.where is not None else None
            )
            victims = [
                rid
                for rid, row in info.heap.scan()
                if predicate is None or predicate.eval(row)
            ]
            for rid in victims:
                info.heap.delete(rid)
            info.row_count -= len(victims)
            return Cursor(("deleted",), [(len(victims),)])
        if isinstance(stmt, sql_ast.Show):
            what = stmt.what.lower()
            if what == "tables":
                rows = [
                    (t.name, len(t.schema), t.row_count)
                    for t in self._catalog.tables()
                ]
                return Cursor(("name", "columns", "rows"), sorted(rows))
            if what == "metrics":
                registry = self._telemetry.registry
                rows = [
                    (name, value, None, None, None)
                    for name, value in sorted(registry.snapshot().items())
                ]
                # One summary row per histogram carrying the quantiles.
                rows.extend(registry.quantile_rows())
                return Cursor(
                    ("name", "value", "p50", "p95", "p99"),
                    sorted(rows, key=lambda r: r[0]),
                )
            if what == "stats":
                return Cursor(("stat", "value"), self._system_stats_rows())
            if what == "server":
                rows = (
                    self._server.stats_rows() if self._server is not None else []
                )
                return Cursor(("stat", "value"), rows)
            if what == "cluster":
                rows = (
                    self._cluster.stats_rows()
                    if self._cluster is not None
                    else []
                )
                return Cursor(("stat", "value"), rows)
            if what == "audit":
                return Cursor(AUDIT_COLUMNS, self._telemetry.audit.rows())
            if what == "models":
                rows = [
                    (m.name, m.model.name, m.model.param_count)
                    for m in self._catalog.models()
                ]
                return Cursor(("name", "model", "params"), sorted(rows))
            if what == "faults":
                return Cursor(FAULT_COLUMNS, self._faults.rows())
            if what == "health":
                return Cursor(HEALTH_COLUMNS, collect_health(self).rows())
            if what == "slo":
                return Cursor(SLO_COLUMNS, self._telemetry.slo.rows())
            if what == "profile":
                return Cursor(
                    PROFILE_COLUMNS, self._telemetry.profiler.top_rows()
                )
            if what == "deployments":
                return Cursor(DEPLOYMENT_COLUMNS, self._deployments.rows())
            raise SqlError(
                f"unknown SHOW target {stmt.what!r}; expected TABLES, "
                "MODELS, METRICS, STATS, SERVER, CLUSTER, AUDIT, FAULTS, "
                "HEALTH, EVENTS, TIMELINE, WORKLOAD, SLO, PROFILE, or "
                "DEPLOYMENTS"
            )
        if isinstance(stmt, sql_ast.ShowEvents):
            rows = filter_rows(
                _EVENTS_SCHEMA, self._telemetry.events.rows(), stmt.where
            )
            return Cursor(EVENT_COLUMNS, rows)
        if isinstance(stmt, sql_ast.ShowTimeline):
            events = self._telemetry.events.events(trace_id=stmt.trace_id)
            spans = self._telemetry.tracer.spans_for(stmt.trace_id)
            return Cursor(TIMELINE_COLUMNS, timeline_rows(events, spans))
        if isinstance(stmt, sql_ast.ShowWorkload):
            workload = self._telemetry.workload
            if stmt.fingerprint is not None:
                return Cursor(
                    ("stat", "value"), workload.detail_rows(stmt.fingerprint)
                )
            return Cursor(
                WORKLOAD_COLUMNS, workload.top_rows(stmt.top, stmt.by)
            )
        if isinstance(stmt, sql_ast.UnionAll):
            from .relational.operators import Concat

            ops = [self._planner.plan_select(q) for q in stmt.queries]
            op = Concat(ops)
            return Cursor(op.schema.names, list(op))
        if isinstance(stmt, sql_ast.Explain):
            return Cursor(("plan",), [(line,) for line in self._explain(stmt.query)])
        if isinstance(stmt, sql_ast.ExplainAnalyze):
            __, report = self._analyze_select(stmt.query)
            return Cursor(("plan",), [(line,) for line in report.split("\n")])
        if isinstance(stmt, sql_ast.Select):
            op = self._planner.plan_select(stmt)
            return Cursor(op.schema.names, list(op))
        if isinstance(stmt, sql_ast.DeployModel):
            dep = self._deployments.deploy(
                stmt.model,
                stmt.version,
                canary_percent=stmt.canary_percent,
                shadow=stmt.shadow,
            )
            return Cursor(DEPLOYMENT_COLUMNS, [dep.as_row()])
        if isinstance(stmt, sql_ast.RollbackModel):
            dep = self._deployments.rollback(stmt.model)
            return Cursor(DEPLOYMENT_COLUMNS, [dep.as_row()])
        raise SqlError(f"unsupported statement type {type(stmt).__name__}")

    def explain_analyze(self, sql: str) -> tuple[Cursor, str]:
        """Execute a SELECT with per-operator instrumentation.

        Accepts a SELECT (optionally already wrapped in ``EXPLAIN
        ANALYZE``).  Returns ``(cursor, report)`` where the report
        annotates every plan node with the rows it produced and its
        inclusive time, and — for PREDICT queries — every inference
        stage with its representation, rows, wall time, and estimated vs
        actual peak memory.
        """
        stmt = parse(sql)
        if isinstance(stmt, sql_ast.ExplainAnalyze):
            stmt = stmt.query
        if not isinstance(stmt, sql_ast.Select):
            raise SqlError("EXPLAIN ANALYZE supports SELECT statements only")
        return self._analyze_select(stmt)

    def _analyze_select(self, stmt: sql_ast.Select) -> tuple[Cursor, str]:
        """Run one SELECT instrumented; returns (result cursor, report)."""
        from .relational.operators.instrument import instrument

        op = self._planner.plan_select(stmt)
        report = instrument(op)
        audit = self._telemetry.audit
        marker = audit.marker()
        cursor = Cursor(op.schema.names, list(op))
        lines = report.render(op).split("\n")
        models = predict_models(stmt)
        if models:
            lines.extend(
                _render_inference_stages(
                    models, audit.records_since(marker), audit.enabled
                )
            )
        return cursor, "\n".join(lines)

    def explain(self, sql: str) -> str:
        """The physical plan, including per-operator representations.

        Accepts a SELECT (optionally already wrapped in ``EXPLAIN``);
        any other statement raises :class:`SqlError`.
        """
        stmt = parse(sql)
        if isinstance(stmt, sql_ast.Explain):
            stmt = stmt.query
        if not isinstance(stmt, sql_ast.Select):
            raise SqlError("EXPLAIN supports SELECT statements only")
        return "\n".join(self._explain(stmt))

    def _explain(self, stmt: sql_ast.Select) -> list[str]:
        op = self._planner.plan_select(stmt)
        lines = op.explain().split("\n")
        for model in predict_models(stmt):
            compiled = self._compiled.get(model.lower())
            if compiled is not None:
                plan = compiled.select(self._config.default_batch_size)
                lines.append("")
                lines.extend(plan.explain().split("\n"))
        return lines

    # -- bulk loading ----------------------------------------------------

    def create_table(self, name: str, schema: Schema) -> None:
        with self._rwlock.write():
            self._catalog.create_table(name, schema)

    def load_rows(self, table: str, rows: Sequence[tuple]) -> int:
        """Bulk-insert pre-validated rows (faster than INSERT statements)."""
        with self._rwlock.write():
            info = self._catalog.get_table(table)
            count = 0
            for row in rows:
                info.heap.insert(row)
                count += 1
            info.row_count += count
            return count

    # -- models -----------------------------------------------------------

    def register_model(self, model: Model, name: str | None = None) -> str:
        """Register a model and AoT-compile its plans (Sec. 2)."""
        model_name = (name or model.name).lower()
        with self._rwlock.write():
            self._catalog.register_model(model_name, model)
            with self._telemetry.tracer.span(
                f"compile:{model_name}", category="optimizer"
            ):
                self._compiled[model_name] = self._compiler.compile(model)
        self._lifecycle.register_base(model_name)
        return model_name

    def register_model_version(
        self,
        name: str,
        version: str,
        model: Model | None = None,
        quantize_bits: int | None = None,
        prune_sparsity: float | None = None,
    ) -> str:
        """Prepare a new version of a registered model, off the write lock.

        Compiles and registers the version concurrently with serving (the
        whole prepare path runs without the database write lock; the only
        shared mutations are single-key dict/catalog inserts under keys no
        reader resolves yet) and publishes it as READY in the lifecycle
        catalog.  The version takes no traffic until ``DEPLOY MODEL``.

        Give either an explicit ``model`` or one of ``quantize_bits`` /
        ``prune_sparsity`` to derive the version from the base weights.
        Returns the internal catalog key (``"name@version"``).
        """
        model_name, version = name.lower(), version.lower()
        self._faults.fire(
            "lifecycle.prepare", model=model_name, version=version
        )
        base = self._catalog.get_model(model_name)
        if model is None:
            from .dedup.versions import derive_version

            model = derive_version(
                base.model,
                quantize_bits=quantize_bits,
                prune_sparsity=prune_sparsity,
            )
        key = f"{model_name}@{version}"
        with self._telemetry.tracer.span(
            f"compile:{key}", category="optimizer"
        ):
            compiled = self._compiler.compile(model)
        self._catalog.register_model(key, model)
        base.versions[version] = model
        self._compiled[key] = compiled
        self._lifecycle.add_version(model_name, version, key)
        if self._telemetry.enabled:
            self._telemetry.events.emit(
                "deploy.prepare", model=model_name, version=version, key=key
            )
        return key

    def deploy_model(
        self,
        name: str,
        version: str,
        canary_percent: float | None = None,
        shadow: bool = False,
    ):
        """Programmatic ``DEPLOY MODEL`` (see :mod:`repro.lifecycle`)."""
        return self._deployments.deploy(
            name, version, canary_percent=canary_percent, shadow=shadow
        )

    def rollback_model(self, name: str, reason: str = "manual"):
        """Programmatic ``ROLLBACK MODEL``."""
        return self._deployments.rollback(name, reason=reason)

    @property
    def lifecycle(self) -> ModelCatalog:
        """The copy-on-write versioned model catalog."""
        return self._lifecycle

    @property
    def deployments(self) -> DeploymentController:
        """The deployment state machine driving DEPLOY/ROLLBACK."""
        return self._deployments

    def _on_routing_changed(self, name: str) -> None:
        # Serving re-pointed to a different version: the result cache was
        # filled by the old one, so drop it rather than risk (or appear to
        # risk) serving stale-version outputs.
        self._caches.pop(name.lower(), None)

    def model_info(self, name: str) -> ModelInfo:
        return self._catalog.get_model(name)

    def inference_plan(
        self, name: str, batch_size: int, force: Representation | str | None = None
    ) -> InferencePlan:
        """The plan PREDICT would use for this model and batch size."""
        model = self._catalog.get_model(name).model
        if force is not None:
            plan = self._optimizer.plan_model(model, batch_size, force=force)
        else:
            compiled = self._compiled.get(name.lower())
            if compiled is None:
                raise CatalogError(
                    f"model {name!r} was not registered through this session"
                )
            # Runtime rescues advance the ledger's per-model generation;
            # a stale compilation re-plans here so the rescued operator is
            # lowered up-front instead of failing (and being rescued) again.
            current_gen = self._ledger.generation(compiled.model.name)
            if compiled.ledger_generation != current_gen:
                with self._telemetry.tracer.span(
                    f"recompile:{name.lower()}", category="optimizer"
                ):
                    compiled = self._compiler.compile(compiled.model)
                self._compiled[name.lower()] = compiled
            plan = compiled.select(batch_size)
        for stage in plan.stages:
            self._m_plan_selections[stage.representation].inc()
        return plan

    def predict(
        self,
        name: str,
        features: np.ndarray,
        force: Representation | str | None = None,
        dl_budget: MemoryBudget | None = None,
    ) -> EngineResult:
        """Run inference through the adaptive (or forced) plan."""
        with self._rwlock.read():
            info = self._catalog.get_model(name)
            plan = self.inference_plan(name, features.shape[0], force=force)
            executor = self._executor
            if dl_budget is not None:
                executor = HybridExecutor(
                    self._catalog,
                    self._config,
                    dl_budget=dl_budget,
                    telemetry=self._telemetry,
                    injector=self._faults,
                    ledger=self._ledger,
                )
            return executor.execute(plan, features, info)

    def predict_labels(self, name: str, features: np.ndarray) -> np.ndarray:
        """Class labels for a feature batch (result cache honoured).

        The batched entry point the serving tier uses: one call, one
        engine invocation, one label per input row.  Runs under the
        database read lock, so it is safe to call from many threads
        concurrently with SELECT/PREDICT queries.
        """
        with self._rwlock.read():
            return self._predict_labels(name, features)

    # -- vector indexes (Sec. 5.1 / the Sec. 6.3 retrieval engine) --------

    def create_vector_index(
        self,
        index_name: str,
        table: str,
        column: str,
        kind: str = "hnsw",
    ) -> int:
        """Build an ANN index over a BLOB vector column.

        Every row's BLOB is interpreted as a float64 vector; all vectors
        must share one dimension.  Returns the number of vectors indexed.
        The index is a snapshot — call :meth:`refresh_vector_index` after
        bulk loads.  This is the paper's Sec. 6.3 scenario: the RDBMS as
        a high-performance retrieval engine (e.g. for augmenting LLM
        inference), with HNSW/LSH/IVF indexing borrowed from vector
        databases.
        """
        with self._rwlock.write():
            key = index_name.lower()
            if key in self._vector_indexes:
                raise CatalogError(f"vector index {index_name!r} already exists")
            info = self._catalog.get_table(table)
            col_idx = info.schema.index_of(column)
            if info.schema[col_idx].ctype.value != "BLOB":
                raise SqlError(
                    f"vector index requires a BLOB column, got {column!r}"
                )
            entry = _VectorIndexEntry(table=info.name, column=column, kind=kind)
            self._vector_indexes[key] = entry
            return self._build_vector_index(entry)

    def refresh_vector_index(self, index_name: str) -> int:
        """Rebuild an index from the current table contents."""
        with self._rwlock.write():
            entry = self._vector_index_entry(index_name)
            return self._build_vector_index(entry)

    def vector_search(self, index_name: str, query: np.ndarray, k: int = 1) -> Cursor:
        """k-NN over an indexed column; returns the matching rows plus a
        trailing ``__distance`` column, nearest first."""
        with self._rwlock.read():
            return self._vector_search(index_name, query, k)

    def _vector_search(
        self, index_name: str, query: np.ndarray, k: int = 1
    ) -> Cursor:
        entry = self._vector_index_entry(index_name)
        if entry.index is None:
            raise CatalogError(f"vector index {index_name!r} was never built")
        self._m_index_searches.inc()
        with self._telemetry.tracer.span(
            f"vector-search:{index_name}", category="index", k=k
        ):
            result = entry.index.search(np.asarray(query, dtype=np.float64), k=k)
        info = self._catalog.get_table(entry.table)
        rows = []
        for vid, dist in zip(result.ids, result.distances):
            if vid < 0:
                continue
            rows.append(info.heap.fetch(entry.rids[int(vid)]) + (float(dist),))
        return Cursor(tuple(info.schema.names) + ("__distance",), rows)

    def _vector_index_entry(self, index_name: str) -> "_VectorIndexEntry":
        entry = self._vector_indexes.get(index_name.lower())
        if entry is None:
            raise CatalogError(f"no vector index named {index_name!r}")
        return entry

    def _build_vector_index(self, entry: "_VectorIndexEntry") -> int:
        from .indexes import FlatIndex, HnswIndex, IvfIndex, LshIndex

        info = self._catalog.get_table(entry.table)
        col_idx = info.schema.index_of(entry.column)
        vectors = []
        rids = []
        for rid, row in info.heap.scan():
            payload = row[col_idx]
            if payload is None:
                continue
            vectors.append(np.frombuffer(payload, dtype=np.float64))
            rids.append(rid)
        if not vectors:
            raise SqlError(
                f"table {entry.table!r} has no vectors in column {entry.column!r}"
            )
        dims = {v.shape[0] for v in vectors}
        if len(dims) != 1:
            raise SqlError(
                f"column {entry.column!r} holds vectors of mixed dimensions {sorted(dims)}"
            )
        dim = dims.pop()
        makers = {
            "hnsw": lambda: HnswIndex(dim, seed=self._config.seed),
            "lsh": lambda: LshIndex(dim, seed=self._config.seed),
            "ivf": lambda: IvfIndex(dim, seed=self._config.seed),
            "flat": lambda: FlatIndex(dim),
        }
        if entry.kind not in makers:
            raise SqlError(
                f"unknown vector index kind {entry.kind!r}; expected one of "
                f"{sorted(makers)}"
            )
        index = makers[entry.kind]()
        with self._telemetry.tracer.span(
            f"vector-build:{entry.kind}", category="index", vectors=len(rids)
        ):
            index.add(np.vstack(vectors))
        entry.index = index
        entry.rids = rids
        self._m_index_builds.inc()
        self._telemetry.registry.gauge(
            "vector_index_vectors", "Vectors held per ANN index", kind=entry.kind
        ).set(len(rids))
        return len(rids)

    # -- result caching (Sec. 5.1) ---------------------------------------

    def enable_result_cache(
        self,
        name: str,
        distance_threshold: float,
        index: str = "hnsw",
        exact: bool = False,
    ) -> None:
        """Serve this model's PREDICT calls through a result cache.

        ``exact=True`` uses hash-keyed exact caching (no accuracy loss,
        only byte-identical repeats hit); otherwise an ANN index
        (``"hnsw"``, ``"lsh"``, ``"ivf"``, or ``"flat"``) answers queries
        within ``distance_threshold``.  Cache entries are persisted into a
        catalog table, making the cache an ordinary managed relation.
        """
        from .indexes import FlatIndex, HnswIndex, IvfIndex, LshIndex
        from .serving.result_cache import ExactResultCache, InferenceResultCache

        with self._rwlock.write():
            info = self._catalog.get_model(name)
            model = info.model
            metrics = (
                self._telemetry.registry if self._telemetry.enabled else None
            )
            if exact:
                self._caches[info.name] = ExactResultCache(
                    model, metrics=metrics, injector=self._faults
                )
                return
            dim = int(np.prod(model.input_shape))
            index_types = {
                "hnsw": lambda: HnswIndex(
                    dim, m=8, ef_search=16, seed=self._config.seed
                ),
                "lsh": lambda: LshIndex(dim, seed=self._config.seed),
                "ivf": lambda: IvfIndex(dim, seed=self._config.seed),
                "flat": lambda: FlatIndex(dim),
            }
            if index not in index_types:
                raise SqlError(
                    f"unknown cache index {index!r}; expected one of "
                    f"{sorted(index_types)}"
                )
            self._caches[info.name] = InferenceResultCache(
                model,
                index_types[index](),
                distance_threshold=distance_threshold,
                catalog=self._catalog,
                table_name=f"__cache_{info.name}",
                metrics=metrics,
                injector=self._faults,
            )

    def disable_result_cache(self, name: str) -> None:
        with self._rwlock.write():
            self._caches.pop(name.lower(), None)

    def result_cache(self, name: str):
        """The model's active cache object (None if caching is disabled)."""
        return self._caches.get(name.lower())

    def _predict_labels(
        self, name: str, features: np.ndarray, proba_class: int | None = None
    ) -> np.ndarray:
        return self._predict_labels_routed(name, features, proba_class)[0]

    def _predict_labels_routed(
        self, name: str, features: np.ndarray, proba_class: int | None = None
    ) -> tuple[np.ndarray, int]:
        """Label prediction through the lifecycle catalog's routing.

        Pins one immutable snapshot for the whole call, so every response
        is attributable to exactly one published generation even while a
        deploy/rollback swaps routing concurrently.
        """
        key = name.lower()
        snapshot = self._lifecycle.snapshot()
        entry = snapshot.entry(key)
        if entry is None:
            # Internal version keys ("m@v") and models that bypassed
            # register_model have no routing entry: execute directly.
            return (
                self._predict_labels_raw(key, features, proba_class),
                snapshot.generation,
            )
        if proba_class is not None:
            # Probability outputs are served by the stable version only
            # (no canary slice: scores are not comparable label-wise).
            serving = entry.key_of(entry.serving)
            return (
                self._predict_labels_raw(serving, features, proba_class),
                snapshot.generation,
            )
        labels = routed_predict(
            self._deployments,
            entry,
            features,
            lambda version_key, feats: self._predict_labels_raw(
                version_key, feats
            ),
            snapshot,
        )
        return labels, snapshot.generation

    def predict_labels_v(
        self, name: str, features: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Like :meth:`predict_labels`, also returning the generation of
        the lifecycle snapshot the call was served from."""
        with self._rwlock.read():
            return self._predict_labels_routed(name, features)

    def route_cluster_predict(self, name: str, features: np.ndarray):
        """Cluster-path entry point: lifecycle routing over pool workers.

        The attached :class:`~repro.cluster.ClusterPool` executes version
        keys directly (each version is its own catalog entry, so it gets
        its own consistent-hash placement); this wrapper applies the same
        canary/shadow split the in-process path uses.
        """
        cluster = self._cluster
        key = name.lower()
        snapshot = self._lifecycle.snapshot()
        entry = snapshot.entry(key)
        if cluster is None or entry is None:
            target = cluster.predict if cluster is not None else (
                lambda n, f: self.predict_labels(n, f)
            )
            return target(key, features)
        return routed_predict(
            self._deployments, entry, features, cluster.predict, snapshot
        )

    def _predict_labels_raw(
        self, name: str, features: np.ndarray, proba_class: int | None = None
    ) -> np.ndarray:
        if proba_class is not None:
            # Probability outputs bypass the result cache (it stores labels).
            result = self.predict(name, features)
            scores = result.outputs
            if not 0 <= proba_class < scores.shape[-1]:
                raise SqlError(
                    f"PREDICT_PROBA class {proba_class} out of range for "
                    f"model {name!r} with {scores.shape[-1]} outputs"
                )
            return scores[:, proba_class]
        cache = self._caches.get(name.lower())
        if cache is not None:
            predictions, __ = cache.serve(features)
            return predictions
        result = self.predict(name, features)
        return np.argmax(result.outputs, axis=-1)

    # -- serving ---------------------------------------------------------

    def serve(
        self,
        workers: int | None = None,
        max_batch_size: int | None = None,
        max_queue_delay_ms: float | None = None,
        queue_capacity: int | None = None,
        default_deadline_ms: float | None = None,
        retry_limit: int | None = None,
        retry_backoff_ms: float | None = None,
        cluster_workers: int | None = None,
    ) -> "ModelServer":
        """Start the concurrent serving front-end for this database.

        Returns a :class:`~repro.server.ModelServer` whose ``submit``
        accepts point PREDICT requests from many client threads,
        coalesces them via dynamic micro-batching, and executes them
        through the hybrid engine under the database read lock.  Knobs
        default to the ``server_*`` fields of :class:`SystemConfig`.
        At most one server may be attached at a time; ``SHOW SERVER``
        reports the attached server's live state.  Close the server
        (or this database) to detach it.

        ``cluster_workers`` (default: ``config.cluster_workers``) opts
        into the process-parallel tier: batches execute on N worker
        *processes* behind a :class:`~repro.cluster.ClusterPool` (models
        sharded by consistent hashing, tensors crossing via shared
        memory) instead of in this process.  ``workers`` still sets the
        *thread* count of the front-end; with a cluster attached it
        defaults to the worker-process count so every process stays
        busy.  ``cluster_workers=0`` is the plain thread path.
        """
        from .server import ModelServer

        if self._server is not None:
            raise ReproError(
                "a ModelServer is already attached to this database; "
                "close it before starting another"
            )
        n_cluster = int(
            cluster_workers
            if cluster_workers is not None
            else self._config.cluster_workers
        )
        pool = None
        if n_cluster > 0:
            from .cluster import ClusterPool

            pool = ClusterPool(self, workers=n_cluster)
            if workers is None:
                workers = max(self._config.server_workers, n_cluster)
        try:
            server = ModelServer(
                self,
                workers=workers,
                max_batch_size=max_batch_size,
                max_queue_delay_ms=max_queue_delay_ms,
                queue_capacity=queue_capacity,
                default_deadline_ms=default_deadline_ms,
                retry_limit=retry_limit,
                retry_backoff_ms=retry_backoff_ms,
                cluster=pool,
            )
        except BaseException:
            if pool is not None:
                pool.close()
            raise
        self._server = server
        if pool is not None:
            self._cluster = pool
        return server

    def _detach_server(self, server: "ModelServer") -> None:
        if self._server is server:
            self._server = None

    # -- diagnostics -----------------------------------------------------

    def dump_diagnostics(
        self, path: str, reason: str = "requested",
        error: BaseException | None = None,
    ) -> str:
        """Write one postmortem diagnostics bundle (JSON) to ``path``.

        The bundle captures the effective config, a metrics snapshot, the
        health report, breaker states, the recovery ledger, armed faults
        (with the injector seed, so chaos failures replay), the last-N
        flight-recorder events, and the last-N finished spans.  See
        :mod:`repro.telemetry.diagnostics` for the schema and
        ``validate_bundle`` for the checker CI runs against it.
        """
        from .telemetry import diagnostics

        bundle = diagnostics.build_bundle(self, reason=reason, error=error)
        return diagnostics.write_bundle(bundle, path)

    def _maybe_dump_diagnostics(
        self, reason: str, error: BaseException | None = None
    ) -> str | None:
        """Auto-dump a bundle into ``config.diagnostics_dir`` (if set).

        Called from failure paths (e.g. the serving worker's
        unhandled-error handler); best-effort — a diagnostics failure must
        never mask the original error, so everything is swallowed.
        """
        directory = self._config.diagnostics_dir
        if not directory:
            return None
        try:
            stamp = int(time.time() * 1e3)
            name = f"diagnostics-{reason.replace('.', '-')}-{stamp}.json"
            return self.dump_diagnostics(
                os.path.join(directory, name), reason=reason, error=error
            )
        except Exception:
            return None

    # -- lifecycle -----------------------------------------------------------

    def close(
        self,
        diagnostics_path: str | None = None,
        drain_timeout_s: float | None = None,
    ) -> int:
        """Close the database, optionally dumping a diagnostics bundle.

        ``diagnostics_path`` writes a postmortem bundle (see
        :meth:`dump_diagnostics`) before any subsystem shuts down, so the
        bundle still sees the attached server and live telemetry.

        An attached server (and cluster pool) is *drained* first — new
        submissions stop, in-flight and queued requests get up to
        ``drain_timeout_s`` (default: ``config.lifecycle_drain_timeout_s``)
        to finish — and only then torn down.  Returns the number of
        requests abandoned by the drain deadline (0 on a clean close);
        abandoned requests fail with ``ServerClosedError`` and are
        reported via a ``server.drain_abandoned`` flight-recorder event
        instead of dying opaquely mid-teardown.
        """
        if diagnostics_path is not None:
            self.dump_diagnostics(diagnostics_path, reason="close")
        self._telemetry.profiler.stop()
        abandoned = 0
        if self._server is not None:
            abandoned = self._server.close(drain_timeout_s=drain_timeout_s)
        if self._cluster is not None:
            self._cluster.close()
        if self._path is not None:
            from .storage import persist

            block_shape = (
                self._config.tensor_block_rows,
                self._config.tensor_block_cols,
            )
            # Durability order matters: serialize may still write block
            # tables, so every dirty page must be flushed *and fsynced*
            # before the sidecar that references those pages is
            # committed.  The old order (sidecar first) could commit a
            # catalog pointing at pages a crash never wrote.
            snapshot = persist.serialize_catalog(self._catalog, block_shape)
            self._pool.flush_all()
            self._disk.sync()
            persist.save_sidecar(
                persist.sidecar_path(self._path),
                snapshot,
                injector=self._faults,
                recorder=(
                    self._telemetry.events if self._telemetry.enabled else None
                ),
            )
        else:
            self._pool.flush_all()
        self._disk.close()
        return abandoned

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
