"""Expression trees evaluated over rows.

Expressions are built unbound (referring to columns by name), then *bound*
against a :class:`~repro.relational.schema.Schema`, which resolves names to
tuple positions and infers the result type.  Binding returns a
:class:`BoundExpression` whose ``eval`` closure works on plain tuples, so the
hot loop of Filter/Project does no name lookups.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass
from typing import Callable, Sequence

from ..errors import BindError
from .schema import ColumnType, Schema


@dataclass(frozen=True)
class BoundExpression:
    """An expression compiled against a schema: a closure plus a result type."""

    eval: Callable[[Sequence[object]], object]
    ctype: ColumnType
    name: str = "expr"


class Expression:
    """Base class for unbound expressions."""

    def bind(self, schema: Schema) -> BoundExpression:
        raise NotImplementedError

    # Convenience constructors so tests and planners can compose trees
    # without importing every node class.
    def __add__(self, other: "Expression") -> "BinaryOp":
        return BinaryOp("+", self, other)

    def __sub__(self, other: "Expression") -> "BinaryOp":
        return BinaryOp("-", self, other)

    def __mul__(self, other: "Expression") -> "BinaryOp":
        return BinaryOp("*", self, other)

    def __truediv__(self, other: "Expression") -> "BinaryOp":
        return BinaryOp("/", self, other)

    def eq(self, other: "Expression") -> "Comparison":
        return Comparison("=", self, other)

    def lt(self, other: "Expression") -> "Comparison":
        return Comparison("<", self, other)

    def gt(self, other: "Expression") -> "Comparison":
        return Comparison(">", self, other)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to a column by (possibly qualified) name."""

    name: str

    def bind(self, schema: Schema) -> BoundExpression:
        name = self.name.lower()
        if schema.has_column(name):
            idx = schema.index_of(name)
        else:
            # Allow an unqualified name to match a uniquely-qualified column
            # (e.g. "id" matching "t.id" after a join)...
            suffix = "." + name
            matches = [i for i, n in enumerate(schema.names) if n.endswith(suffix)]
            if len(matches) == 1:
                idx = matches[0]
            elif len(matches) > 1:
                raise BindError(f"ambiguous column reference {self.name!r}")
            elif "." in name and schema.has_column(name.rsplit(".", 1)[1]):
                # ...and a qualified name to match its unqualified survivor
                # after a projection stripped the qualifier.
                idx = schema.index_of(name.rsplit(".", 1)[1])
            else:
                raise BindError(
                    f"no column {self.name!r}; available: {list(schema.names)}"
                )
        ctype = schema[idx].ctype
        return BoundExpression(operator.itemgetter(idx), ctype, name=name)


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: object

    def bind(self, schema: Schema) -> BoundExpression:
        value = self.value
        if isinstance(value, bool):
            ctype = ColumnType.BOOL
        elif isinstance(value, int):
            ctype = ColumnType.INT
        elif isinstance(value, float):
            ctype = ColumnType.DOUBLE
        elif isinstance(value, str):
            ctype = ColumnType.TEXT
        elif isinstance(value, (bytes, bytearray)):
            ctype = ColumnType.BLOB
        elif value is None:
            ctype = ColumnType.TEXT  # NULL literal; type refined by context
        else:
            raise BindError(f"unsupported literal {value!r}")
        return BoundExpression(lambda row: value, ctype, name=repr(value))


_ARITH_OPS: dict[str, Callable[[float, float], float]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "%": operator.mod,
}

_CMP_OPS: dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _null_safe(fn: Callable, *args: Callable) -> Callable[[Sequence[object]], object]:
    """Wrap an n-ary operation so that any NULL input yields NULL."""

    def eval_row(row: Sequence[object]) -> object:
        values = [arg(row) for arg in args]
        if any(v is None for v in values):
            return None
        return fn(*values)

    return eval_row


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Arithmetic over two numeric expressions."""

    op: str
    left: Expression
    right: Expression

    def bind(self, schema: Schema) -> BoundExpression:
        if self.op not in _ARITH_OPS:
            raise BindError(f"unknown arithmetic operator {self.op!r}")
        left = self.left.bind(schema)
        right = self.right.bind(schema)
        for side in (left, right):
            if not side.ctype.is_numeric:
                raise BindError(
                    f"operator {self.op!r} requires numeric operands, "
                    f"got {side.ctype.value} ({side.name})"
                )
        if self.op == "/":
            ctype = ColumnType.DOUBLE
        elif left.ctype is ColumnType.INT and right.ctype is ColumnType.INT:
            ctype = ColumnType.INT
        else:
            ctype = ColumnType.DOUBLE
        fn = _ARITH_OPS[self.op]
        name = f"({left.name} {self.op} {right.name})"
        return BoundExpression(_null_safe(fn, left.eval, right.eval), ctype, name)


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary minus or logical NOT."""

    op: str
    operand: Expression

    def bind(self, schema: Schema) -> BoundExpression:
        inner = self.operand.bind(schema)
        if self.op == "-":
            if not inner.ctype.is_numeric:
                raise BindError("unary minus requires a numeric operand")
            return BoundExpression(
                _null_safe(operator.neg, inner.eval), inner.ctype, f"(-{inner.name})"
            )
        if self.op.upper() == "NOT":
            return BoundExpression(
                _null_safe(operator.not_, inner.eval),
                ColumnType.BOOL,
                f"(NOT {inner.name})",
            )
        raise BindError(f"unknown unary operator {self.op!r}")


@dataclass(frozen=True)
class Comparison(Expression):
    """A comparison producing a BOOL."""

    op: str
    left: Expression
    right: Expression

    def bind(self, schema: Schema) -> BoundExpression:
        if self.op not in _CMP_OPS:
            raise BindError(f"unknown comparison operator {self.op!r}")
        left = self.left.bind(schema)
        right = self.right.bind(schema)
        numeric_pair = left.ctype.is_numeric and right.ctype.is_numeric
        if left.ctype is not right.ctype and not numeric_pair:
            raise BindError(
                f"cannot compare {left.ctype.value} with {right.ctype.value}"
            )
        fn = _CMP_OPS[self.op]
        name = f"({left.name} {self.op} {right.name})"
        return BoundExpression(
            _null_safe(fn, left.eval, right.eval), ColumnType.BOOL, name
        )


@dataclass(frozen=True)
class LogicalOp(Expression):
    """AND / OR over boolean expressions (NULL-propagating)."""

    op: str
    left: Expression
    right: Expression

    def bind(self, schema: Schema) -> BoundExpression:
        op = self.op.upper()
        left = self.left.bind(schema)
        right = self.right.bind(schema)

        if op == "AND":

            def eval_row(row: Sequence[object]) -> object:
                lval = left.eval(row)
                if lval is False:
                    return False
                rval = right.eval(row)
                if rval is False:
                    return False
                if lval is None or rval is None:
                    return None
                return bool(lval) and bool(rval)

        elif op == "OR":

            def eval_row(row: Sequence[object]) -> object:
                lval = left.eval(row)
                if lval is True:
                    return True
                rval = right.eval(row)
                if rval is True:
                    return True
                if lval is None or rval is None:
                    return None
                return bool(lval) or bool(rval)

        else:
            raise BindError(f"unknown logical operator {self.op!r}")
        name = f"({left.name} {op} {right.name})"
        return BoundExpression(eval_row, ColumnType.BOOL, name)


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS NULL`` / ``expr IS NOT NULL`` (never yields NULL itself)."""

    operand: Expression
    negated: bool = False

    def bind(self, schema: Schema) -> BoundExpression:
        inner = self.operand.bind(schema)
        negated = self.negated

        def eval_row(row: Sequence[object]) -> object:
            is_null = inner.eval(row) is None
            return not is_null if negated else is_null

        name = f"({inner.name} IS {'NOT ' if negated else ''}NULL)"
        return BoundExpression(eval_row, ColumnType.BOOL, name)


@dataclass(frozen=True)
class Like(Expression):
    """SQL ``LIKE`` with ``%`` (any run) and ``_`` (single char) wildcards."""

    operand: Expression
    pattern: str
    negated: bool = False

    def bind(self, schema: Schema) -> BoundExpression:
        import re

        inner = self.operand.bind(schema)
        if inner.ctype is not ColumnType.TEXT:
            raise BindError("LIKE requires a TEXT operand")
        regex = re.compile(
            "^" + re.escape(self.pattern).replace("%", ".*").replace("_", ".") + "$",
            re.DOTALL,
        )
        negated = self.negated

        def eval_row(row: Sequence[object]) -> object:
            value = inner.eval(row)
            if value is None:
                return None
            matched = regex.match(value) is not None
            return not matched if negated else matched

        name = f"({inner.name} {'NOT ' if negated else ''}LIKE {self.pattern!r})"
        return BoundExpression(eval_row, ColumnType.BOOL, name)


@dataclass(frozen=True)
class CaseWhen(Expression):
    """``CASE WHEN cond THEN value [...] [ELSE value] END``.

    Branch result types must agree (numeric mixes widen to DOUBLE); a
    missing ELSE yields NULL when no branch matches.
    """

    branches: tuple[tuple[Expression, Expression], ...]
    default: Expression | None = None

    def bind(self, schema: Schema) -> BoundExpression:
        if not self.branches:
            raise BindError("CASE requires at least one WHEN branch")
        bound_branches = []
        result_types = []
        for condition, value in self.branches:
            bound_cond = condition.bind(schema)
            if bound_cond.ctype is not ColumnType.BOOL:
                raise BindError("CASE conditions must be boolean")
            bound_value = value.bind(schema)
            bound_branches.append((bound_cond, bound_value))
            result_types.append(bound_value.ctype)
        bound_default = self.default.bind(schema) if self.default else None
        if bound_default is not None:
            result_types.append(bound_default.ctype)
        distinct_types = set(result_types)
        if len(distinct_types) == 1:
            ctype = result_types[0]
        elif all(t.is_numeric for t in distinct_types):
            ctype = ColumnType.DOUBLE
        else:
            raise BindError(
                f"CASE branches have incompatible types: "
                f"{sorted(t.value for t in distinct_types)}"
            )

        widen = ctype is ColumnType.DOUBLE and len(distinct_types) > 1

        def eval_row(row: Sequence[object]) -> object:
            for bound_cond, bound_value in bound_branches:
                if bound_cond.eval(row):
                    result = bound_value.eval(row)
                    break
            else:
                result = (
                    bound_default.eval(row) if bound_default is not None else None
                )
            if widen and result is not None:
                return float(result)
            return result

        parts = " ".join(
            f"WHEN {c.name} THEN {v.name}" for c, v in bound_branches
        )
        suffix = f" ELSE {bound_default.name}" if bound_default else ""
        return BoundExpression(eval_row, ctype, f"(CASE {parts}{suffix} END)")


_SCALAR_FUNCTIONS: dict[str, tuple[Callable, ColumnType | None]] = {
    # name -> (implementation, fixed result type or None meaning "numeric")
    "ABS": (abs, None),
    "SQRT": (math.sqrt, ColumnType.DOUBLE),
    "EXP": (math.exp, ColumnType.DOUBLE),
    "LN": (math.log, ColumnType.DOUBLE),
    "FLOOR": (lambda x: int(math.floor(x)), ColumnType.INT),
    "CEIL": (lambda x: int(math.ceil(x)), ColumnType.INT),
    "ROUND": (lambda x: float(round(x)), ColumnType.DOUBLE),
    "SIGN": (lambda x: (x > 0) - (x < 0), ColumnType.INT),
    "LOWER": (str.lower, ColumnType.TEXT),
    "UPPER": (str.upper, ColumnType.TEXT),
    "LENGTH": (len, ColumnType.INT),
}


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A scalar function call (``PREDICT`` is handled by the planner, not here)."""

    name: str
    args: tuple[Expression, ...]

    def bind(self, schema: Schema) -> BoundExpression:
        fname = self.name.upper()
        if fname not in _SCALAR_FUNCTIONS:
            raise BindError(f"unknown scalar function {self.name!r}")
        fn, fixed_type = _SCALAR_FUNCTIONS[fname]
        if len(self.args) != 1:
            raise BindError(f"{fname} takes exactly one argument")
        arg = self.args[0].bind(schema)
        ctype = fixed_type if fixed_type is not None else arg.ctype
        name = f"{fname}({arg.name})"
        return BoundExpression(_null_safe(fn, arg.eval), ctype, name)


def scalar_function_names() -> frozenset[str]:
    """Names of the built-in scalar functions (for the binder)."""
    return frozenset(_SCALAR_FUNCTIONS)
