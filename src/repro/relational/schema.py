"""Schemas and column types.

Rows flow through the engine as plain Python tuples; a :class:`Schema` gives
those tuples meaning.  The type system is deliberately small — the paper's
workloads need integers, doubles, text, booleans, and BLOBs (tensor blocks
are stored as BLOB columns in the relation-centric representation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import SchemaError


class ColumnType(enum.Enum):
    """The value types a column may hold."""

    INT = "INT"
    DOUBLE = "DOUBLE"
    TEXT = "TEXT"
    BOOL = "BOOL"
    BLOB = "BLOB"

    @property
    def is_numeric(self) -> bool:
        return self in (ColumnType.INT, ColumnType.DOUBLE, ColumnType.BOOL)

    @property
    def python_types(self) -> tuple[type, ...]:
        return _PYTHON_TYPES[self]

    @classmethod
    def parse(cls, name: str) -> "ColumnType":
        """Parse a SQL type name (accepts common aliases)."""
        normalized = _TYPE_ALIASES.get(name.upper())
        if normalized is None:
            raise SchemaError(f"unknown column type {name!r}")
        return normalized


_TYPE_ALIASES = {
    "INT": ColumnType.INT,
    "INTEGER": ColumnType.INT,
    "BIGINT": ColumnType.INT,
    "DOUBLE": ColumnType.DOUBLE,
    "FLOAT": ColumnType.DOUBLE,
    "REAL": ColumnType.DOUBLE,
    "TEXT": ColumnType.TEXT,
    "VARCHAR": ColumnType.TEXT,
    "STRING": ColumnType.TEXT,
    "BOOL": ColumnType.BOOL,
    "BOOLEAN": ColumnType.BOOL,
    "BLOB": ColumnType.BLOB,
    "BYTEA": ColumnType.BLOB,
}

_PYTHON_TYPES: dict[ColumnType, tuple[type, ...]] = {
    ColumnType.INT: (int, np.integer),
    ColumnType.DOUBLE: (float, int, np.floating, np.integer),
    ColumnType.TEXT: (str,),
    ColumnType.BOOL: (bool, np.bool_),
    ColumnType.BLOB: (bytes, bytearray, memoryview),
}


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    ctype: ColumnType

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")

    def renamed(self, name: str) -> "Column":
        return Column(name, self.ctype)


class Schema:
    """An ordered collection of columns with fast name lookup.

    Column names are case-insensitive (stored lower-cased), matching the SQL
    front end.  Duplicate names are rejected: operators that concatenate
    schemas (joins) qualify columns first.
    """

    __slots__ = ("_columns", "_index")

    def __init__(self, columns: Iterable[Column]):
        self._columns: tuple[Column, ...] = tuple(
            Column(c.name.lower(), c.ctype) for c in columns
        )
        self._index: dict[str, int] = {}
        for i, col in enumerate(self._columns):
            if col.name in self._index:
                raise SchemaError(f"duplicate column name {col.name!r}")
            self._index[col.name] = i

    @classmethod
    def of(cls, *pairs: tuple[str, ColumnType]) -> "Schema":
        """Build a schema from (name, type) pairs."""
        return cls(Column(name, ctype) for name, ctype in pairs)

    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __getitem__(self, i: int) -> Column:
        return self._columns[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name} {c.ctype.value}" for c in self._columns)
        return f"Schema({cols})"

    def index_of(self, name: str) -> int:
        """Return the position of ``name`` (case-insensitive)."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise SchemaError(
                f"no column {name!r} in schema with columns {list(self.names)}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index

    def column(self, name: str) -> Column:
        return self._columns[self.index_of(name)]

    def project(self, names: Sequence[str]) -> "Schema":
        """Return a new schema restricted to ``names`` in the given order."""
        return Schema(self.column(n) for n in names)

    def concat(self, other: "Schema", prefixes: tuple[str, str] | None = None) -> "Schema":
        """Concatenate two schemas (for joins).

        If ``prefixes`` is given, every column is qualified as
        ``prefix.name``; otherwise names must not collide.
        """
        if prefixes is None:
            return Schema(list(self._columns) + list(other._columns))
        left_prefix, right_prefix = prefixes
        left = (c.renamed(f"{left_prefix}.{c.name}") for c in self._columns)
        right = (c.renamed(f"{right_prefix}.{c.name}") for c in other._columns)
        return Schema(list(left) + list(right))

    def validate_row(self, row: Sequence[object]) -> None:
        """Raise :class:`SchemaError` if ``row`` does not conform."""
        if len(row) != len(self._columns):
            raise SchemaError(
                f"row has {len(row)} values but schema has {len(self._columns)} columns"
            )
        for value, col in zip(row, self._columns):
            if value is None:
                continue
            if not isinstance(value, col.ctype.python_types):
                raise SchemaError(
                    f"value {value!r} is not valid for column "
                    f"{col.name!r} of type {col.ctype.value}"
                )

    def coerce_row(self, row: Sequence[object]) -> tuple[object, ...]:
        """Validate and normalise a row (numpy scalars → Python scalars)."""
        self.validate_row(row)
        out = []
        for value, col in zip(row, self._columns):
            if value is None:
                out.append(None)
            elif col.ctype is ColumnType.INT:
                out.append(int(value))
            elif col.ctype is ColumnType.DOUBLE:
                out.append(float(value))
            elif col.ctype is ColumnType.BOOL:
                out.append(bool(value))
            elif col.ctype is ColumnType.BLOB:
                out.append(bytes(value))
            else:
                out.append(value)
        return tuple(out)
