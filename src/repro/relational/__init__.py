"""Relational data model: schemas, typed columns, and bound expressions."""

from .schema import Column, ColumnType, Schema
from .expressions import (
    BinaryOp,
    CaseWhen,
    BoundExpression,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    IsNull,
    Like,
    Literal,
    LogicalOp,
    UnaryOp,
)

__all__ = [
    "Column",
    "ColumnType",
    "Schema",
    "Expression",
    "BoundExpression",
    "ColumnRef",
    "Literal",
    "BinaryOp",
    "CaseWhen",
    "UnaryOp",
    "Comparison",
    "LogicalOp",
    "FunctionCall",
    "IsNull",
    "Like",
]
