"""LIMIT / OFFSET."""

from __future__ import annotations

import itertools
from typing import Iterator

from ...errors import PlanError
from .base import Operator, Row


class Limit(Operator):
    """Pass through at most ``limit`` rows after skipping ``offset``."""

    def __init__(self, child: Operator, limit: int, offset: int = 0):
        if limit < 0 or offset < 0:
            raise PlanError("LIMIT and OFFSET must be non-negative")
        self._child = child
        self._schema = child.schema
        self._limit = limit
        self._offset = offset

    def rows(self) -> Iterator[Row]:
        return itertools.islice(
            iter(self._child), self._offset, self._offset + self._limit
        )

    def describe(self) -> str:
        suffix = f" OFFSET {self._offset}" if self._offset else ""
        return f"Limit({self._limit}{suffix})"

    def children(self) -> tuple[Operator, ...]:
        return (self._child,)
