"""Selection."""

from __future__ import annotations

from typing import Iterator

from ...errors import PlanError
from ..expressions import BoundExpression, Expression
from ..schema import ColumnType
from .base import Operator, Row


class Filter(Operator):
    """Keep rows whose predicate evaluates to true (NULL drops the row)."""

    def __init__(self, child: Operator, predicate: Expression | BoundExpression):
        self._child = child
        self._schema = child.schema
        if isinstance(predicate, Expression):
            bound = predicate.bind(child.schema)
        else:
            bound = predicate
        if bound.ctype is not ColumnType.BOOL:
            raise PlanError(
                f"filter predicate must be boolean, got {bound.ctype.value}"
            )
        self._predicate = bound

    def rows(self) -> Iterator[Row]:
        predicate = self._predicate.eval
        for row in self._child:
            if predicate(row):
                yield row

    def describe(self) -> str:
        return f"Filter({self._predicate.name})"

    def children(self) -> tuple[Operator, ...]:
        return (self._child,)
