"""Leaf operators: sequential scans over heaps, literals, and generators."""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from ...errors import SchemaError
from ...storage.catalog import TableInfo
from ..schema import Schema
from .base import Operator, Row


class SeqScan(Operator):
    """Full scan of a heap table through the buffer pool."""

    def __init__(self, table: TableInfo, alias: str | None = None):
        self._table = table
        if alias:
            self._schema = Schema(
                col.renamed(f"{alias.lower()}.{col.name}") for col in table.schema
            )
        else:
            self._schema = table.schema
        self._alias = alias

    @property
    def table(self) -> TableInfo:
        return self._table

    @property
    def estimated_rows(self) -> int:
        return self._table.row_count

    def rows(self) -> Iterator[Row]:
        for __, row in self._table.heap.scan():
            yield row

    def describe(self) -> str:
        suffix = f" AS {self._alias}" if self._alias else ""
        return f"SeqScan({self._table.name}{suffix})"


class ValuesScan(Operator):
    """Scan over an in-memory list of rows (used for VALUES and tests)."""

    def __init__(self, schema: Schema, rows: Iterable[Row]):
        self._schema = schema
        self._rows = list(rows)
        for row in self._rows:
            if len(row) != len(schema):
                raise SchemaError(
                    f"VALUES row arity {len(row)} does not match schema "
                    f"arity {len(schema)}"
                )

    def rows(self) -> Iterator[Row]:
        return iter(self._rows)

    def describe(self) -> str:
        return f"ValuesScan({len(self._rows)} rows)"


class GeneratorScan(Operator):
    """Scan whose rows come from a restartable generator factory.

    The relation-centric engine uses this to stream tensor blocks out of
    blocked matrices without materializing them first.
    """

    def __init__(self, schema: Schema, factory: Callable[[], Iterator[Row]], label: str = ""):
        self._schema = schema
        self._factory = factory
        self._label = label

    def rows(self) -> Iterator[Row]:
        return self._factory()

    def describe(self) -> str:
        return f"GeneratorScan({self._label})" if self._label else "GeneratorScan"
