"""Projection (with computed expressions and renaming)."""

from __future__ import annotations

from typing import Iterator, Sequence

from ..expressions import BoundExpression, Expression
from ..schema import Column, Schema
from .base import Operator, Row


class Project(Operator):
    """Evaluate a list of (expression, output name) pairs per row."""

    def __init__(
        self,
        child: Operator,
        items: Sequence[tuple[Expression | BoundExpression, str]],
    ):
        self._child = child
        bound: list[tuple[BoundExpression, str]] = []
        for expr, name in items:
            if isinstance(expr, Expression):
                bound.append((expr.bind(child.schema), name))
            else:
                bound.append((expr, name))
        self._items = bound
        self._schema = Schema(
            Column(name, expr.ctype) for expr, name in bound
        )

    def rows(self) -> Iterator[Row]:
        evals = [expr.eval for expr, __ in self._items]
        for row in self._child:
            yield tuple(e(row) for e in evals)

    def describe(self) -> str:
        cols = ", ".join(f"{expr.name} AS {name}" for expr, name in self._items)
        return f"Project({cols})"

    def children(self) -> tuple[Operator, ...]:
        return (self._child,)
