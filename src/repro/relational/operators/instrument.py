"""Operator instrumentation for EXPLAIN ANALYZE.

Wraps every node of a physical plan so that executing it records, per
operator, the rows produced and the inclusive wall-clock time spent
producing them.  Instrumentation shadows the instance's ``rows`` method
with a counting generator — the plan's structure and semantics are
untouched, so analysis runs the exact plan it reports on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator

from .base import Operator, Row


@dataclass
class NodeStats:
    """Execution counters for one operator."""

    rows: int = 0
    inclusive_seconds: float = 0.0
    opened: int = 0


@dataclass
class AnalyzeReport:
    """Per-node statistics keyed by operator identity."""

    stats: dict[int, NodeStats] = field(default_factory=dict)

    def for_node(self, op: Operator) -> NodeStats:
        return self.stats.setdefault(id(op), NodeStats())

    def render(self, root: Operator) -> str:
        lines: list[str] = []

        def walk(node: Operator, depth: int) -> None:
            stats = self.stats.get(id(node), NodeStats())
            pad = "  " * depth
            lines.append(
                f"{pad}{node.describe()}  "
                f"[rows={stats.rows}, time={stats.inclusive_seconds * 1e3:.2f}ms]"
            )
            for child in node.children():
                walk(child, depth + 1)

        walk(root, 0)
        return "\n".join(lines)


def instrument(root: Operator) -> AnalyzeReport:
    """Attach counters to every node of the plan (idempotent per node).

    Re-instrumenting an already-instrumented plan *replaces* the previous
    wrapper instead of stacking a second counting layer: each wrapper
    carries the pristine ``rows`` it shadowed in an
    ``_instrument_original`` sentinel attribute, and wrapping always
    starts from that original.  Stacked wrappers would drive every
    report's counters at once and bill each generator's bookkeeping
    overhead to the reports below it.
    """
    report = AnalyzeReport()

    def wrap(node: Operator) -> None:
        stats = report.for_node(node)
        original_rows = getattr(node.rows, "_instrument_original", node.rows)

        def counting_rows() -> Iterator[Row]:
            stats.opened += 1
            start = time.perf_counter()
            try:
                for row in original_rows():
                    stats.inclusive_seconds += time.perf_counter() - start
                    stats.rows += 1
                    yield row
                    start = time.perf_counter()
                stats.inclusive_seconds += time.perf_counter() - start
            except GeneratorExit:
                stats.inclusive_seconds += time.perf_counter() - start
                raise

        # Shadow the bound method on the instance only; the sentinel lets
        # a later instrument() call find the unwrapped original.
        counting_rows._instrument_original = original_rows  # type: ignore[attr-defined]
        node.rows = counting_rows  # type: ignore[method-assign]
        for child in node.children():
            wrap(child)

    wrap(root)
    return report
