"""Hash aggregation with optional group-by keys.

Besides SQL aggregates, this operator supports ``SUM_BLOCK``: element-wise
summation of numpy arrays carried through BLOB columns — the "aggregation"
half of the paper's matmul → join + aggregation rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

from ...errors import PlanError
from ..expressions import BoundExpression, Expression
from ..schema import Column, ColumnType, Schema
from .base import Operator, Row


class _Accumulator:
    """One aggregate's running state (fresh instance per group)."""

    def add(self, value: object) -> None:
        raise NotImplementedError

    def result(self) -> object:
        raise NotImplementedError


class _Sum(_Accumulator):
    def __init__(self) -> None:
        self.total: float | int | None = None

    def add(self, value: object) -> None:
        if value is None:
            return
        self.total = value if self.total is None else self.total + value

    def result(self) -> object:
        return self.total


class _Count(_Accumulator):
    def __init__(self) -> None:
        self.n = 0

    def add(self, value: object) -> None:
        if value is not None:
            self.n += 1

    def result(self) -> object:
        return self.n


class _CountStar(_Accumulator):
    def __init__(self) -> None:
        self.n = 0

    def add(self, value: object) -> None:
        self.n += 1

    def result(self) -> object:
        return self.n


class _Avg(_Accumulator):
    def __init__(self) -> None:
        self.total = 0.0
        self.n = 0

    def add(self, value: object) -> None:
        if value is None:
            return
        self.total += value  # type: ignore[operator]
        self.n += 1

    def result(self) -> object:
        return self.total / self.n if self.n else None


class _Min(_Accumulator):
    def __init__(self) -> None:
        self.value: object = None

    def add(self, value: object) -> None:
        if value is None:
            return
        if self.value is None or value < self.value:  # type: ignore[operator]
            self.value = value

    def result(self) -> object:
        return self.value


class _Max(_Accumulator):
    def __init__(self) -> None:
        self.value: object = None

    def add(self, value: object) -> None:
        if value is None:
            return
        if self.value is None or value > self.value:  # type: ignore[operator]
            self.value = value

    def result(self) -> object:
        return self.value


class _SumBlock(_Accumulator):
    """Element-wise sum of float64 arrays serialized as BLOBs."""

    def __init__(self) -> None:
        self.array: np.ndarray | None = None

    def add(self, value: object) -> None:
        if value is None:
            return
        block = np.frombuffer(value, dtype=np.float64)  # type: ignore[arg-type]
        if self.array is None:
            self.array = block.copy()
        else:
            self.array += block

    def result(self) -> object:
        if self.array is None:
            return None
        return self.array.tobytes()


_AGGREGATES: dict[str, tuple[Callable[[], _Accumulator], ColumnType | None]] = {
    # name -> (accumulator factory, fixed result type or None = input type)
    "SUM": (_Sum, None),
    "COUNT": (_Count, ColumnType.INT),
    "COUNT_STAR": (_CountStar, ColumnType.INT),
    "AVG": (_Avg, ColumnType.DOUBLE),
    "MIN": (_Min, None),
    "MAX": (_Max, None),
    "SUM_BLOCK": (_SumBlock, ColumnType.BLOB),
}


def aggregate_function_names() -> frozenset[str]:
    """Names accepted by the SQL binder (COUNT_STAR is spelled COUNT(*))."""
    return frozenset(n for n in _AGGREGATES if n != "COUNT_STAR")


@dataclass
class AggregateSpec:
    """One aggregate in the output: function, input expression, output name."""

    func: str
    arg: Expression | BoundExpression | None
    output_name: str

    def bind(self, schema: Schema) -> tuple[Callable[[], _Accumulator], BoundExpression | None, ColumnType]:
        fname = self.func.upper()
        if fname not in _AGGREGATES:
            raise PlanError(f"unknown aggregate function {self.func!r}")
        factory, fixed_type = _AGGREGATES[fname]
        if fname == "COUNT_STAR":
            return factory, None, ColumnType.INT
        if self.arg is None:
            raise PlanError(f"aggregate {fname} requires an argument")
        bound = self.arg.bind(schema) if isinstance(self.arg, Expression) else self.arg
        if fname == "SUM_BLOCK":
            if bound.ctype is not ColumnType.BLOB:
                raise PlanError("SUM_BLOCK requires a BLOB argument")
        elif fname not in ("MIN", "MAX", "COUNT") and not bound.ctype.is_numeric:
            raise PlanError(f"aggregate {fname} requires a numeric argument")
        ctype = fixed_type if fixed_type is not None else bound.ctype
        return factory, bound, ctype


class Aggregate(Operator):
    """Group rows by key expressions and fold aggregates per group.

    With no group keys, produces exactly one row (global aggregation),
    even over empty input.
    """

    def __init__(
        self,
        child: Operator,
        group_by: Sequence[tuple[Expression | BoundExpression, str]],
        aggregates: Sequence[AggregateSpec],
    ):
        if not aggregates and not group_by:
            raise PlanError("aggregate needs at least one group key or aggregate")
        self._child = child
        self._group_exprs: list[tuple[BoundExpression, str]] = []
        for expr, name in group_by:
            bound = expr.bind(child.schema) if isinstance(expr, Expression) else expr
            self._group_exprs.append((bound, name))
        self._agg_bound = []
        columns: list[Column] = [
            Column(name, expr.ctype) for expr, name in self._group_exprs
        ]
        for spec in aggregates:
            factory, bound, ctype = spec.bind(child.schema)
            self._agg_bound.append((factory, bound))
            columns.append(Column(spec.output_name, ctype))
        self._schema = Schema(columns)
        self._specs = list(aggregates)

    def rows(self) -> Iterator[Row]:
        group_evals = [expr.eval for expr, __ in self._group_exprs]
        groups: dict[tuple, list[_Accumulator]] = {}
        for row in self._child:
            key = tuple(e(row) for e in group_evals)
            accs = groups.get(key)
            if accs is None:
                accs = [factory() for factory, __ in self._agg_bound]
                groups[key] = accs
            for acc, (__, bound) in zip(accs, self._agg_bound):
                acc.add(bound.eval(row) if bound is not None else None)
        if not groups and not self._group_exprs:
            # Global aggregation over empty input still yields one row.
            accs = [factory() for factory, __ in self._agg_bound]
            yield tuple(acc.result() for acc in accs)
            return
        for key, accs in groups.items():
            yield key + tuple(acc.result() for acc in accs)

    def describe(self) -> str:
        keys = ", ".join(name for __, name in self._group_exprs)
        aggs = ", ".join(f"{s.func}(...) AS {s.output_name}" for s in self._specs)
        return f"Aggregate(group by [{keys}]; {aggs})"

    def children(self) -> tuple[Operator, ...]:
        return (self._child,)
