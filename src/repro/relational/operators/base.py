"""Operator base class and small helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..schema import Schema

Row = tuple


class Operator:
    """A physical operator producing a stream of tuples.

    Subclasses implement :meth:`rows` (a generator) and set ``_schema`` in
    their constructor.  Operators are restartable: iterating twice replays
    the computation (children are re-iterated).
    """

    _schema: Schema

    @property
    def schema(self) -> Schema:
        return self._schema

    def rows(self) -> Iterator[Row]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Row]:
        return self.rows()

    def explain(self, indent: int = 0) -> str:
        """Human-readable plan tree."""
        pad = "  " * indent
        lines = [pad + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__

    def children(self) -> tuple["Operator", ...]:
        return ()


@dataclass
class MaterializedResult:
    """A fully evaluated operator output."""

    schema: Schema
    rows: list[Row]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def column(self, name: str) -> list[object]:
        idx = self.schema.index_of(name)
        return [row[idx] for row in self.rows]


def collect(op: Operator) -> MaterializedResult:
    """Drain an operator into a materialized result."""
    return MaterializedResult(op.schema, list(op))
