"""Physical relational operators (Volcano-style iterator model).

Every operator exposes an output :class:`~repro.relational.schema.Schema`
and is iterable, yielding plain tuples.  The relation-centric engine builds
its matmul-as-join-plus-aggregation pipelines from exactly these operators,
so they are shared between ordinary SQL queries and tensor computation.
"""

from .base import Operator, MaterializedResult, collect
from .scan import SeqScan, ValuesScan, GeneratorScan
from .filter import Filter
from .project import Project
from .join import HashJoin, NestedLoopJoin
from .similarity_join import SimilarityJoin
from .aggregate import Aggregate, AggregateSpec
from .sort import Sort, SortKey
from .limit import Limit
from .distinct import Distinct
from .concat import Concat
from .map_rows import MapRows

__all__ = [
    "Operator",
    "MaterializedResult",
    "collect",
    "SeqScan",
    "ValuesScan",
    "GeneratorScan",
    "Filter",
    "Project",
    "HashJoin",
    "NestedLoopJoin",
    "SimilarityJoin",
    "Aggregate",
    "AggregateSpec",
    "Sort",
    "SortKey",
    "Limit",
    "Distinct",
    "Concat",
    "MapRows",
]
