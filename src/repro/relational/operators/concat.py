"""Bag union (UNION ALL)."""

from __future__ import annotations

from typing import Iterator, Sequence

from ...errors import PlanError
from .base import Operator, Row


class Concat(Operator):
    """Concatenate same-arity inputs (types follow the first input)."""

    def __init__(self, children: Sequence[Operator]):
        if not children:
            raise PlanError("UNION ALL requires at least one input")
        widths = {len(c.schema) for c in children}
        if len(widths) != 1:
            raise PlanError(
                f"UNION ALL inputs have different arities: {sorted(widths)}"
            )
        self._children = list(children)
        self._schema = children[0].schema

    def rows(self) -> Iterator[Row]:
        for child in self._children:
            yield from child

    def describe(self) -> str:
        return f"Concat({len(self._children)} inputs)"

    def children(self) -> tuple[Operator, ...]:
        return tuple(self._children)
