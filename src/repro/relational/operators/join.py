"""Equi-joins: in-memory hash join with Grace-style spilling, plus a
nested-loop join for arbitrary predicates.

The hash join is the workhorse of the relation-centric representation:
``A × B`` over blocked tensors becomes
``HashJoin(blocks_A, blocks_B, A.col_blk = B.row_blk)`` followed by an
aggregation.  When the build side exceeds ``max_build_rows``, both inputs
are partitioned to temporary spill files and each partition is joined
independently — the same discipline that lets the paper's netsDB run
operators larger than memory.
"""

from __future__ import annotations

import pickle
import tempfile
from typing import Iterator, Sequence

from ...errors import PlanError
from ..expressions import BoundExpression, Expression
from .base import Operator, Row


def _bind_keys(
    keys: Sequence[Expression | BoundExpression], op: Operator
) -> list[BoundExpression]:
    bound = []
    for key in keys:
        bound.append(key.bind(op.schema) if isinstance(key, Expression) else key)
    return bound


class HashJoin(Operator):
    """Equi-join on one or more key expressions.

    ``join_type`` is ``"inner"`` or ``"left"``.  The left input is the
    build side by convention; callers should place the smaller input left.
    """

    DEFAULT_MAX_BUILD_ROWS = 1_000_000
    SPILL_PARTITIONS = 16

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: Sequence[Expression | BoundExpression],
        right_keys: Sequence[Expression | BoundExpression],
        join_type: str = "inner",
        max_build_rows: int | None = None,
    ):
        if len(left_keys) != len(right_keys):
            raise PlanError("join requires equal numbers of left and right keys")
        if not left_keys:
            raise PlanError("join requires at least one key")
        if join_type not in ("inner", "left"):
            raise PlanError(f"unsupported join type {join_type!r}")
        self._left = left
        self._right = right
        self._left_keys = _bind_keys(left_keys, left)
        self._right_keys = _bind_keys(right_keys, right)
        self._join_type = join_type
        self._max_build_rows = (
            max_build_rows if max_build_rows is not None else self.DEFAULT_MAX_BUILD_ROWS
        )
        self._schema = left.schema.concat(right.schema)

    def rows(self) -> Iterator[Row]:
        left_key = self._key_fn(self._left_keys)
        right_key = self._key_fn(self._right_keys)

        build: dict[tuple, list[Row]] = {}
        overflow = False
        left_iter = iter(self._left)
        buffered: list[Row] = []
        for row in left_iter:
            key = left_key(row)
            if key is None:
                continue
            build.setdefault(key, []).append(row)
            buffered.append(row)
            if len(buffered) > self._max_build_rows:
                overflow = True
                break

        if overflow:
            yield from self._grace_join(buffered, left_iter, left_key, right_key)
            return

        null_right = (None,) * len(self._right.schema)
        matched: set[tuple] = set()
        for row in self._right:
            key = right_key(row)
            if key is None:
                continue
            for left_row in build.get(key, ()):
                if self._join_type == "left":
                    matched.add(key)
                yield left_row + row
        if self._join_type == "left":
            for key, rows in build.items():
                if key not in matched:
                    for left_row in rows:
                        yield left_row + null_right

    @staticmethod
    def _key_fn(keys: list[BoundExpression]):
        evals = [k.eval for k in keys]

        def compute(row: Row) -> tuple | None:
            values = tuple(e(row) for e in evals)
            if any(v is None for v in values):
                return None
            return values

        return compute

    # -- Grace partitioning --------------------------------------------

    def _grace_join(
        self,
        buffered: list[Row],
        left_rest: Iterator[Row],
        left_key,
        right_key,
    ) -> Iterator[Row]:
        if self._join_type == "left":
            raise PlanError("left join does not support spilling build sides")
        nparts = self.SPILL_PARTITIONS
        with tempfile.TemporaryFile() as left_spill, tempfile.TemporaryFile() as right_spill:
            left_offsets = self._partition_to_file(
                left_spill, list(buffered), left_rest, left_key, nparts
            )
            right_offsets = self._partition_to_file(
                right_spill, [], iter(self._right), right_key, nparts
            )
            for part in range(nparts):
                build: dict[tuple, list[Row]] = {}
                for row in self._read_partition(left_spill, left_offsets, part):
                    build.setdefault(left_key(row), []).append(row)
                if not build:
                    continue
                for row in self._read_partition(right_spill, right_offsets, part):
                    for left_row in build.get(right_key(row), ()):
                        yield left_row + row

    @staticmethod
    def _partition_to_file(spill, head: list[Row], rest: Iterator[Row], key_fn, nparts: int):
        """Write rows into per-partition pickle batches; returns offsets.

        Returns a list of (offset, length) lists, one per partition.  The
        spill format is pickle, which is safe here because the file is
        created and consumed within this process.
        """
        batches: list[list[Row]] = [[] for __ in range(nparts)]
        offsets: list[list[tuple[int, int]]] = [[] for __ in range(nparts)]
        batch_limit = 4096

        def flush(part: int) -> None:
            if not batches[part]:
                return
            payload = pickle.dumps(batches[part], protocol=pickle.HIGHEST_PROTOCOL)
            spill.seek(0, 2)
            start = spill.tell()
            spill.write(payload)
            offsets[part].append((start, len(payload)))
            batches[part] = []

        for source in (iter(head), rest):
            for row in source:
                key = key_fn(row)
                if key is None:
                    continue
                part = hash(key) % nparts
                batches[part].append(row)
                if len(batches[part]) >= batch_limit:
                    flush(part)
        for part in range(nparts):
            flush(part)
        return offsets

    @staticmethod
    def _read_partition(spill, offsets, part: int) -> Iterator[Row]:
        for start, length in offsets[part]:
            spill.seek(start)
            yield from pickle.loads(spill.read(length))

    def describe(self) -> str:
        keys = ", ".join(
            f"{l.name}={r.name}" for l, r in zip(self._left_keys, self._right_keys)
        )
        return f"HashJoin[{self._join_type}]({keys})"

    def children(self) -> tuple[Operator, ...]:
        return (self._left, self._right)


class NestedLoopJoin(Operator):
    """Join on an arbitrary boolean predicate (inner only).

    Quadratic; used when no equi-key exists.  The right side is
    materialized once.
    """

    def __init__(self, left: Operator, right: Operator, predicate: Expression):
        self._left = left
        self._right = right
        self._schema = left.schema.concat(right.schema)
        self._predicate = predicate.bind(self._schema)

    def rows(self) -> Iterator[Row]:
        right_rows = list(self._right)
        predicate = self._predicate.eval
        for left_row in self._left:
            for right_row in right_rows:
                combined = left_row + right_row
                if predicate(combined):
                    yield combined

    def describe(self) -> str:
        return f"NestedLoopJoin({self._predicate.name})"

    def children(self) -> tuple[Operator, ...]:
        return (self._left, self._right)
