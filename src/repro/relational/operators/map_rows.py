"""Row-level UDF application.

``MapRows`` is the general escape hatch used by the UDF-centric engine: it
buffers rows into batches, hands each batch to a Python callable (the UDF),
and streams the callable's output rows.  The batch interface is what allows
a model UDF to run vectorised numpy over many rows at once instead of
per-tuple Python.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from ...errors import PlanError
from ..schema import Schema
from .base import Operator, Row

BatchUdf = Callable[[list[Row]], Iterable[Row]]


class MapRows(Operator):
    """Apply a batch UDF: ``list[in_row] -> iterable[out_row]``."""

    def __init__(
        self,
        child: Operator,
        udf: BatchUdf,
        output_schema: Schema,
        batch_size: int = 1024,
        label: str = "udf",
    ):
        if batch_size < 1:
            raise PlanError("batch_size must be at least 1")
        self._child = child
        self._udf = udf
        self._schema = output_schema
        self._batch_size = batch_size
        self._label = label

    def rows(self) -> Iterator[Row]:
        batch: list[Row] = []
        for row in self._child:
            batch.append(row)
            if len(batch) >= self._batch_size:
                yield from self._udf(batch)
                batch = []
        if batch:
            yield from self._udf(batch)

    def describe(self) -> str:
        return f"MapRows({self._label}, batch={self._batch_size})"

    def children(self) -> tuple[Operator, ...]:
        return (self._child,)
