"""Similarity (band) join: ``|left.key - right.key| <= epsilon``.

Section 7.2.1 of the paper joins the two vertical partitions of the Bosch
dataset on the similarity of their most-correlated column pair.  A naive
nested loop is quadratic; we implement the standard sort-merge band join,
which sorts both sides on the key and slides a window, giving
``O(n log n + output)``.
"""

from __future__ import annotations

from typing import Iterator

from ...errors import PlanError
from ..expressions import BoundExpression, Expression
from .base import Operator, Row


class SimilarityJoin(Operator):
    """Band join on one numeric key per side."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_key: Expression | BoundExpression,
        right_key: Expression | BoundExpression,
        epsilon: float,
    ):
        if epsilon < 0:
            raise PlanError("similarity join epsilon must be non-negative")
        self._left = left
        self._right = right
        self._left_key = (
            left_key.bind(left.schema) if isinstance(left_key, Expression) else left_key
        )
        self._right_key = (
            right_key.bind(right.schema)
            if isinstance(right_key, Expression)
            else right_key
        )
        for side in (self._left_key, self._right_key):
            if not side.ctype.is_numeric:
                raise PlanError("similarity join keys must be numeric")
        self._epsilon = float(epsilon)
        self._schema = left.schema.concat(right.schema)

    def rows(self) -> Iterator[Row]:
        left_eval = self._left_key.eval
        right_eval = self._right_key.eval
        left_sorted = sorted(
            ((left_eval(r), r) for r in self._left if left_eval(r) is not None),
            key=lambda kv: kv[0],
        )
        right_sorted = sorted(
            ((right_eval(r), r) for r in self._right if right_eval(r) is not None),
            key=lambda kv: kv[0],
        )
        eps = self._epsilon
        start = 0
        nright = len(right_sorted)
        for lkey, lrow in left_sorted:
            while start < nright and right_sorted[start][0] < lkey - eps:
                start += 1
            i = start
            while i < nright and right_sorted[i][0] <= lkey + eps:
                yield lrow + right_sorted[i][1]
                i += 1

    def describe(self) -> str:
        return (
            f"SimilarityJoin(|{self._left_key.name} - {self._right_key.name}| "
            f"<= {self._epsilon})"
        )

    def children(self) -> tuple[Operator, ...]:
        return (self._left, self._right)
