"""Sorting: in-memory for small inputs, external merge sort beyond a
configurable row budget (runs spill to temporary files, then k-way merge),
so ORDER BY obeys the same bounded-memory discipline as the rest of the
engine."""

from __future__ import annotations

import heapq
import pickle
import tempfile
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..expressions import BoundExpression, Expression
from .base import Operator, Row


@dataclass
class SortKey:
    """One ORDER BY term."""

    expr: Expression | BoundExpression
    descending: bool = False


class Sort(Operator):
    """Stable multi-key sort; NULLs sort last (first when descending).

    Inputs larger than ``max_rows_in_memory`` are sorted externally:
    sorted runs of that size spill to a temp file and a k-way merge
    streams the result.
    """

    DEFAULT_MAX_ROWS = 1_000_000

    def __init__(
        self,
        child: Operator,
        keys: Sequence[SortKey],
        max_rows_in_memory: int | None = None,
    ):
        self._child = child
        self._schema = child.schema
        self._keys = [
            (
                key.expr.bind(child.schema)
                if isinstance(key.expr, Expression)
                else key.expr,
                key.descending,
            )
            for key in keys
        ]
        self._max_rows = (
            max_rows_in_memory
            if max_rows_in_memory is not None
            else self.DEFAULT_MAX_ROWS
        )

    def _sort_key(self, row: Row) -> tuple:
        """A single composite key implementing per-key DESC and NULL order."""
        parts = []
        for bound, descending in self._keys:
            value = bound.eval(row)
            rank, key = _null_aware(value)
            if descending:
                parts.append((-rank, _Reversed(key)))
            else:
                parts.append((rank, key))
        return tuple(parts)

    def rows(self) -> Iterator[Row]:
        source = iter(self._child)
        first_run: list[Row] = []
        for row in source:
            first_run.append(row)
            if len(first_run) > self._max_rows:
                return self._external_sort(first_run, source)
        first_run.sort(key=self._sort_key)
        return iter(first_run)

    def _external_sort(self, head: list[Row], rest: Iterator[Row]) -> Iterator[Row]:
        """Spill sorted runs to a temp file, then merge them."""
        spill = tempfile.TemporaryFile()
        runs: list[tuple[int, int]] = []  # (offset, length)

        def flush(run: list[Row]) -> None:
            run.sort(key=self._sort_key)
            payload = pickle.dumps(run, protocol=pickle.HIGHEST_PROTOCOL)
            spill.seek(0, 2)
            runs.append((spill.tell(), len(payload)))
            spill.write(payload)

        run = head
        for row in rest:
            run.append(row)
            if len(run) >= self._max_rows:
                flush(run)
                run = []
        if run:
            flush(run)

        def read_run(offset: int, length: int) -> Iterator[Row]:
            spill.seek(offset)
            yield from pickle.loads(spill.read(length))

        try:
            streams = [read_run(offset, length) for offset, length in runs]
            merged = heapq.merge(*streams, key=self._sort_key)
            yield from merged
        finally:
            spill.close()

    def describe(self) -> str:
        keys = ", ".join(
            f"{bound.name}{' DESC' if desc else ''}" for bound, desc in self._keys
        )
        return f"Sort({keys})"

    def children(self) -> tuple[Operator, ...]:
        return (self._child,)


class _Reversed:
    """Inverts comparison order for DESC keys inside composite sort keys."""

    __slots__ = ("value",)

    def __init__(self, value: object):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value  # type: ignore[operator]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value


def _null_aware(value: object) -> tuple[int, object]:
    if value is None:
        return (1, 0)
    return (0, value)
