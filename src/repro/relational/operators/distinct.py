"""Duplicate elimination."""

from __future__ import annotations

from typing import Iterator

from .base import Operator, Row


class Distinct(Operator):
    """Emit each distinct row once, preserving first-seen order."""

    def __init__(self, child: Operator):
        self._child = child
        self._schema = child.schema

    def rows(self) -> Iterator[Row]:
        seen: set[Row] = set()
        for row in self._child:
            if row in seen:
                continue
            seen.add(row)
            yield row

    def describe(self) -> str:
        return "Distinct"

    def children(self) -> tuple[Operator, ...]:
        return (self._child,)
