"""Workload intelligence: query fingerprints and per-shape aggregates.

Recurring query *shapes* — not individual statements — are what the
plan-compile cache, scale-out placement, and model-versioning layers need
to reason about.  This module normalizes a parsed statement into a stable
**fingerprint** (every literal replaced by a ``'?'`` placeholder, then
rendered through the canonical :func:`repro.sql.unparse.unparse` form and
hashed), so ``WHERE x = 1`` and ``WHERE x = 2`` — or the same statement
reformatted or re-cased — collapse into one workload entry.

A bounded :class:`WorkloadStore` aggregates per-fingerprint execution
statistics from :class:`~repro.telemetry.query_stats.QueryStats` on every
``Database.execute``: call count, a latency histogram, rows and bytes
read, engine representation mix, result-cache hit ratio, runtime
recoveries, and the last plan summary.  ``SHOW WORKLOAD [TOP k BY
latency|count|bytes]`` renders the aggregate view and ``SHOW WORKLOAD
'<fingerprint>'`` the single-shape detail view.

The store doubles as the **plan-regression detector**: each fingerprint
keeps a rolling latency baseline (seeded over a warmup window, then
exponentially aged) and a last-plan summary; a fresh execution that blows
past ``regression_factor`` times the baseline, or that switches
representation mix, emits a ``workload.regression`` flight-recorder event
and bumps ``workload_regressions_total``.
"""

from __future__ import annotations

import hashlib
import threading

from ..relational.expressions import (
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    IsNull,
    Like,
    Literal,
    LogicalOp,
    UnaryOp,
)
from .registry import DEFAULT_LATENCY_BUCKETS, Histogram

# The sql package transitively imports storage (which imports telemetry
# for its metrics); loading it lazily on first fingerprint breaks the
# cycle without pushing imports into the per-query hot path (after the
# first call these are module-dict lookups).
sql_ast = None
unparse = None


def _ensure_sql() -> None:
    global sql_ast, unparse
    if sql_ast is None:
        from ..sql import ast as _ast
        from ..sql.unparse import unparse as _unparse

        sql_ast = _ast
        unparse = _unparse

#: Columns for ``SHOW WORKLOAD [TOP k BY ...]`` cursors.
WORKLOAD_COLUMNS: tuple[str, ...] = (
    "fingerprint",
    "statement",
    "calls",
    "mean_ms",
    "p50_ms",
    "p95_ms",
    "rows",
    "bytes",
    "cache_hit_rate",
    "recoveries",
    "plan",
    "sql",
)

#: The literal placeholder normalized statements carry.
PLACEHOLDER = "?"

#: Valid ``SHOW WORKLOAD TOP k BY <target>`` orderings.
ORDER_TARGETS: tuple[str, ...] = ("latency", "count", "bytes")


# -- fingerprinting ------------------------------------------------------


def _norm_expr(expr: Expression) -> Expression:
    """One expression with every literal value replaced by ``'?'``."""
    if isinstance(expr, Literal):
        return Literal(PLACEHOLDER)
    if isinstance(expr, ColumnRef):
        return expr
    if isinstance(expr, UnaryOp):
        # "-5" parses as UnaryOp("-", Literal(5)): collapse it with the
        # positive form so `x = -1` and `x = 1` share a fingerprint.
        if expr.op == "-" and isinstance(expr.operand, Literal):
            return Literal(PLACEHOLDER)
        return UnaryOp(expr.op, _norm_expr(expr.operand))
    if isinstance(expr, (BinaryOp, Comparison, LogicalOp)):
        return type(expr)(expr.op, _norm_expr(expr.left), _norm_expr(expr.right))
    if isinstance(expr, IsNull):
        return IsNull(_norm_expr(expr.operand), expr.negated)
    if isinstance(expr, Like):
        return Like(_norm_expr(expr.operand), PLACEHOLDER, expr.negated)
    if isinstance(expr, CaseWhen):
        return CaseWhen(
            tuple(
                (_norm_expr(cond), _norm_expr(value))
                for cond, value in expr.branches
            ),
            _norm_expr(expr.default) if expr.default is not None else None,
        )
    if isinstance(expr, FunctionCall):
        return FunctionCall(expr.name, tuple(_norm_expr(a) for a in expr.args))
    return expr


def _norm_item(item):
    expr = item.expr
    if isinstance(expr, sql_ast.Star):
        return item
    if isinstance(expr, sql_ast.AggregateCall):
        normalized: object = sql_ast.AggregateCall(
            expr.func, _norm_expr(expr.arg) if expr.arg is not None else None
        )
    elif isinstance(expr, sql_ast.PredictCall):
        normalized = sql_ast.PredictCall(
            expr.model, [_norm_expr(a) for a in expr.args], expr.proba_class
        )
    else:
        normalized = _norm_expr(expr)
    return sql_ast.SelectItem(normalized, item.alias)


def _norm_select(stmt):
    return sql_ast.Select(
        items=[_norm_item(item) for item in stmt.items],
        table=stmt.table,
        joins=[
            sql_ast.Join(join.table, _norm_expr(join.condition), join.kind)
            for join in stmt.joins
        ],
        where=_norm_expr(stmt.where) if stmt.where is not None else None,
        group_by=[_norm_expr(e) for e in stmt.group_by],
        order_by=[(_norm_expr(e), desc) for e, desc in stmt.order_by],
        # LIMIT/OFFSET values are literals too: `LIMIT 5` and `LIMIT 10`
        # are the same shape.  Presence is kept, the value is zeroed.
        limit=0 if stmt.limit is not None else None,
        offset=0,
        distinct=stmt.distinct,
        having=_norm_expr(stmt.having) if stmt.having is not None else None,
    )


def normalize(stmt):
    """One statement with every literal stripped to ``'?'``.

    The result still unparses/reparses (placeholders are string
    literals), which is what makes the fingerprint stable across
    whitespace, casing, and ``parse(unparse(s))`` round-trips: the lexer
    lowercases identifiers and :func:`unparse` is canonical.
    """
    _ensure_sql()
    if isinstance(stmt, sql_ast.Select):
        return _norm_select(stmt)
    if isinstance(stmt, sql_ast.UnionAll):
        return sql_ast.UnionAll([_norm_select(q) for q in stmt.queries])
    if isinstance(stmt, sql_ast.Explain):
        return sql_ast.Explain(_norm_select(stmt.query))
    if isinstance(stmt, sql_ast.ExplainAnalyze):
        return sql_ast.ExplainAnalyze(_norm_select(stmt.query))
    if isinstance(stmt, sql_ast.Insert):
        # Bulk loads differ only in row count and values: collapse to one
        # row of placeholders, keeping the column arity.
        arity = len(stmt.rows[0]) if stmt.rows else 0
        return sql_ast.Insert(stmt.table, [[PLACEHOLDER] * arity])
    if isinstance(stmt, sql_ast.InsertSelect):
        return sql_ast.InsertSelect(stmt.table, _norm_select(stmt.query))
    if isinstance(stmt, sql_ast.CreateTableAs):
        return sql_ast.CreateTableAs(stmt.name, _norm_select(stmt.query))
    if isinstance(stmt, sql_ast.Update):
        return sql_ast.Update(
            stmt.table,
            [(col, _norm_expr(expr)) for col, expr in stmt.assignments],
            _norm_expr(stmt.where) if stmt.where is not None else None,
        )
    if isinstance(stmt, sql_ast.Delete):
        return sql_ast.Delete(
            stmt.table,
            _norm_expr(stmt.where) if stmt.where is not None else None,
        )
    if isinstance(stmt, sql_ast.ShowEvents):
        return sql_ast.ShowEvents(
            _norm_expr(stmt.where) if stmt.where is not None else None
        )
    if isinstance(stmt, sql_ast.ShowTimeline):
        return sql_ast.ShowTimeline(0)
    if isinstance(stmt, sql_ast.ShowWorkload):
        return sql_ast.ShowWorkload(
            top=0 if stmt.top is not None else None,
            by=stmt.by,
            fingerprint=PLACEHOLDER if stmt.fingerprint is not None else None,
        )
    # CreateTable / DropTable / Show carry no literals.
    return stmt


def fingerprint(stmt) -> tuple[str, str]:
    """``(fingerprint, normalized sql)`` for one parsed statement.

    The fingerprint is the first 12 hex digits of the SHA-1 of the
    normalized statement's canonical unparse — short enough to type into
    ``SHOW WORKLOAD '<fp>'``, long enough that collisions within one
    session's workload are negligible.
    """
    _ensure_sql()
    text = unparse(normalize(stmt))
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:12], text


# -- the bounded per-fingerprint store -----------------------------------


class _Entry:
    """Aggregated execution state for one query fingerprint."""

    __slots__ = (
        "fingerprint",
        "text",
        "statement",
        "calls",
        "total_seconds",
        "total_rows",
        "total_bytes",
        "latency",
        "cache_hits",
        "cache_misses",
        "recoveries",
        "representations",
        "plan_summary",
        "last_trace_id",
        "last_used",
        "baseline_seconds",
        "warmup_seconds",
        "regressions",
    )

    def __init__(self, fp: str, text: str, statement: str):
        self.fingerprint = fp
        self.text = text
        self.statement = statement
        self.calls = 0
        self.total_seconds = 0.0
        self.total_rows = 0
        self.total_bytes = 0
        self.latency = Histogram(
            "workload_latency_seconds", buckets=DEFAULT_LATENCY_BUCKETS
        )
        self.cache_hits = 0
        self.cache_misses = 0
        self.recoveries = 0
        self.representations: dict[str, int] = {}
        self.plan_summary = ""
        self.last_trace_id = 0
        self.last_used = 0
        self.baseline_seconds = 0.0
        self.warmup_seconds = 0.0
        self.regressions = 0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


def _plan_summary(representations: dict[str, int]) -> str:
    if not representations:
        return "-"
    return ",".join(
        f"{rep}={count}" for rep, count in sorted(representations.items())
    )


class WorkloadStore:
    """Bounded per-fingerprint workload aggregates (thread-safe).

    At most ``max_fingerprints`` shapes are tracked; recording a new
    shape at capacity evicts the least-recently-seen one (counted in
    ``workload_evicted_total``), so a run of one-off ad-hoc statements
    cannot push out the recurring shapes that matter.
    """

    enabled = True

    def __init__(
        self,
        max_fingerprints: int = 512,
        page_size: int = 64 * 1024,
        regression_factor: float = 3.0,
        regression_warmup: int = 8,
        regression_min_ms: float = 5.0,
        metrics=None,
        recorder=None,
    ):
        if max_fingerprints < 1:
            from ..errors import TelemetryError

            raise TelemetryError("max_fingerprints must be >= 1")
        self.max_fingerprints = max_fingerprints
        self.page_size = page_size
        self.regression_factor = regression_factor
        self.regression_warmup = max(1, regression_warmup)
        self.regression_min_seconds = regression_min_ms / 1e3
        self._entries: dict[str, _Entry] = {}
        self._lock = threading.Lock()
        self._clock = 0  # recency counter for LRU eviction (no wall time)
        self.evicted_total = 0
        self.recorded_total = 0
        self._recorder = recorder
        if metrics is not None:
            self._m_regressions = metrics.counter(
                "workload_regressions_total",
                "Fingerprints whose fresh latency or plan regressed "
                "against the rolling baseline",
            )
            self._m_evicted = metrics.counter(
                "workload_evicted_total",
                "Fingerprints evicted from the bounded workload store",
            )
            self._m_fingerprints = metrics.gauge(
                "workload_fingerprints", "Distinct query shapes tracked"
            )
        else:
            self._m_regressions = None
            self._m_evicted = None
            self._m_fingerprints = None

    def __len__(self) -> int:
        return len(self._entries)

    def record(self, stmt: sql_ast.Statement, stats) -> str:
        """Fold one executed statement's ``QueryStats`` into the store.

        Returns the statement's fingerprint.  Called by
        ``Database.execute`` after the per-query stats are assembled, so
        it never holds the store lock while the query runs.
        """
        fp, text = fingerprint(stmt)
        bytes_read = stats.pool_misses * self.page_size
        with self._lock:
            self._clock += 1
            entry = self._entries.get(fp)
            if entry is None:
                if len(self._entries) >= self.max_fingerprints:
                    self._evict_locked()
                entry = _Entry(fp, text, type(stmt).__name__)
                self._entries[fp] = entry
                if self._m_fingerprints is not None:
                    self._m_fingerprints.set(len(self._entries))
            entry.last_used = self._clock
            entry.calls += 1
            entry.total_seconds += stats.elapsed_seconds
            entry.total_rows += stats.rows
            entry.total_bytes += bytes_read
            entry.latency.observe(stats.elapsed_seconds)
            entry.cache_hits += stats.cache_hits
            entry.cache_misses += stats.cache_misses
            entry.recoveries += stats.recovered_stages
            for rep, count in stats.representations.items():
                entry.representations[rep] = (
                    entry.representations.get(rep, 0) + count
                )
            if stats.trace_id:
                entry.last_trace_id = stats.trace_id
            self.recorded_total += 1
            self._detect_regression_locked(entry, stats)
        return fp

    def _evict_locked(self) -> None:
        victim = min(self._entries.values(), key=lambda e: e.last_used)
        del self._entries[victim.fingerprint]
        self.evicted_total += 1
        if self._m_evicted is not None:
            self._m_evicted.inc()

    def _detect_regression_locked(self, entry: _Entry, stats) -> None:
        """Compare one fresh execution against the fingerprint's baseline.

        The baseline latency is the mean of the first ``warmup`` calls,
        then exponentially aged (alpha 0.2) so a persistently slower
        world re-baselines instead of alerting forever.  Plan choice is
        compared as the representation-mix summary of this execution.
        """
        elapsed = stats.elapsed_seconds
        plan_now = _plan_summary(stats.representations)
        if entry.calls <= self.regression_warmup:
            entry.warmup_seconds += elapsed
            entry.baseline_seconds = entry.warmup_seconds / entry.calls
            if stats.representations or entry.calls == 1:
                entry.plan_summary = plan_now
            return
        baseline = entry.baseline_seconds
        slow = (
            elapsed > baseline * self.regression_factor
            and elapsed - baseline >= self.regression_min_seconds
        )
        plan_changed = (
            bool(stats.representations)
            and entry.plan_summary not in ("", "-")
            and plan_now != entry.plan_summary
        )
        if slow or plan_changed:
            entry.regressions += 1
            if self._m_regressions is not None:
                self._m_regressions.inc()
            if self._recorder is not None:
                self._recorder.emit(
                    "workload.regression",
                    trace_id=stats.trace_id or None,
                    fingerprint=entry.fingerprint,
                    regression="plan" if plan_changed else "latency",
                    latency_ms=round(elapsed * 1e3, 3),
                    baseline_ms=round(baseline * 1e3, 3),
                    plan=plan_now,
                    previous_plan=entry.plan_summary,
                )
        entry.baseline_seconds = baseline + 0.2 * (elapsed - baseline)
        if stats.representations:
            entry.plan_summary = plan_now

    # -- rendering -------------------------------------------------------

    def _row(self, entry: _Entry) -> tuple:
        return (
            entry.fingerprint,
            entry.statement,
            entry.calls,
            round(entry.mean_seconds * 1e3, 3),
            round(entry.latency.quantile(0.5) * 1e3, 3),
            round(entry.latency.quantile(0.95) * 1e3, 3),
            entry.total_rows,
            entry.total_bytes,
            round(entry.cache_hit_rate, 4),
            entry.recoveries,
            entry.plan_summary or "-",
            entry.text,
        )

    def top_rows(self, top: int | None = None, by: str = "latency") -> list[tuple]:
        """``SHOW WORKLOAD`` rows (:data:`WORKLOAD_COLUMNS`), hottest first."""
        if by not in ORDER_TARGETS:
            from ..errors import TelemetryError

            raise TelemetryError(
                f"unknown workload ordering {by!r}; expected one of "
                f"{ORDER_TARGETS}"
            )
        keys = {
            "latency": lambda e: e.total_seconds,
            "count": lambda e: e.calls,
            "bytes": lambda e: e.total_bytes,
        }
        with self._lock:
            entries = sorted(
                self._entries.values(),
                key=lambda e: (-keys[by](e), e.fingerprint),
            )
            if top is not None:
                entries = entries[:top]
            return [self._row(e) for e in entries]

    def detail_rows(self, fp: str) -> list[tuple[str, object]]:
        """``SHOW WORKLOAD '<fp>'`` rows: (stat, value) pairs, or empty."""
        with self._lock:
            entry = self._entries.get(fp)
            if entry is None:
                return []
            rows: list[tuple[str, object]] = [
                ("fingerprint", entry.fingerprint),
                ("sql", entry.text),
                ("statement", entry.statement),
                ("calls", entry.calls),
                ("mean_ms", round(entry.mean_seconds * 1e3, 3)),
                ("p50_ms", round(entry.latency.quantile(0.5) * 1e3, 3)),
                ("p95_ms", round(entry.latency.quantile(0.95) * 1e3, 3)),
                ("p99_ms", round(entry.latency.quantile(0.99) * 1e3, 3)),
                ("rows", entry.total_rows),
                ("bytes", entry.total_bytes),
                ("cache_hits", entry.cache_hits),
                ("cache_misses", entry.cache_misses),
                ("cache_hit_rate", round(entry.cache_hit_rate, 4)),
                ("recoveries", entry.recoveries),
                ("regressions", entry.regressions),
                ("baseline_ms", round(entry.baseline_seconds * 1e3, 3)),
                ("plan", entry.plan_summary or "-"),
            ]
            for rep, count in sorted(entry.representations.items()):
                rows.append((f"stages[{rep}]", count))
            if entry.last_trace_id:
                rows.append(("last_trace_id", entry.last_trace_id))
            return rows

    def regressions_total(self) -> int:
        with self._lock:
            return sum(e.regressions for e in self._entries.values())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.evicted_total = 0
            self.recorded_total = 0


class NullWorkloadStore:
    """No-op workload store for disabled telemetry."""

    enabled = False
    max_fingerprints = 0
    evicted_total = 0
    recorded_total = 0

    def __len__(self) -> int:
        return 0

    def record(self, stmt, stats) -> str:
        return ""

    def top_rows(self, top: int | None = None, by: str = "latency") -> list[tuple]:
        return []

    def detail_rows(self, fp: str) -> list[tuple[str, object]]:
        return []

    def regressions_total(self) -> int:
        return 0

    def clear(self) -> None:
        pass


#: Shared no-op store for disabled telemetry.
NULL_WORKLOAD = NullWorkloadStore()
