"""Postmortem diagnostics bundles: one JSON artifact per incident.

A bundle is the serialized answer to "what was the system doing when it
broke?": the effective config, a metrics snapshot, the health report,
breaker states, the recovery ledger, armed faults (with the injector
seed, so a chaos failure replays deterministically), the last-N flight
recorder events, the last-N finished spans, the workload top-K (which
query shapes dominated), the SLO burn state, and the stage-profiler
summary.

``Database.dump_diagnostics(path)`` writes one on request;
the serving worker's unhandled-error path writes one automatically when
``SystemConfig.diagnostics_dir`` is set.  :func:`validate_bundle` is the
schema check CI's diagnostics-smoke job (and the tests) run against the
artifact — an unparseable or incomplete bundle is itself a bug.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

from .profiler import PROFILE_COLUMNS
from .slo import SLO_COLUMNS
from .workload import WORKLOAD_COLUMNS

#: Bumped when the bundle layout changes incompatibly.  v2 added the
#: workload / slo / profile sections; v3 added the cluster section
#: (null when no process pool is attached); v4 added the lifecycle
#: section (catalog generation, publication history, deployments, and
#: the per-version breaker rows).
BUNDLE_VERSION = 4

#: Keys every well-formed bundle must carry.
REQUIRED_KEYS: tuple[str, ...] = (
    "bundle_version",
    "created_unix",
    "reason",
    "config",
    "metrics",
    "health",
    "breakers",
    "recovery_ledger",
    "faults",
    "events",
    "traces",
    "workload",
    "slo",
    "profile",
    "cluster",
    "lifecycle",
)

#: Query shapes included in a bundle's workload section.
WORKLOAD_TOP_K = 20


def build_bundle(
    db, reason: str = "requested", error: BaseException | None = None,
    max_events: int = 512, max_spans: int = 512,
) -> dict:
    """Assemble the diagnostics dict for one database (JSON-safe)."""
    telemetry = db._telemetry
    bundle: dict = {
        "bundle_version": BUNDLE_VERSION,
        "created_unix": time.time(),
        "reason": reason,
        "error": (
            {"type": type(error).__name__, "message": str(error)}
            if error is not None
            else None
        ),
        "config": dataclasses.asdict(db.config),
        "metrics": telemetry.registry.snapshot(),
        "health": [list(row) for row in db.health().rows()],
        "breakers": _breaker_rows(db),
        "recovery_ledger": [list(row) for row in db.recovery_ledger.rows()],
        "faults": {
            "seed": db.faults.seed,
            "armed": db.faults.armed_count,
            "rows": [list(row) for row in db.faults.rows()],
        },
        "events": telemetry.events.as_dicts(limit=max_events),
        "events_dropped": telemetry.events.dropped,
        "traces": _span_dicts(telemetry.tracer, max_spans),
        "spans_dropped": getattr(telemetry.tracer, "dropped", 0),
        # Workload intelligence: which query shapes dominated (top-K by
        # total latency), whether any SLO was burning, and where sampled
        # stage time went — the "what was hot" half of the postmortem.
        "workload": {
            "columns": list(WORKLOAD_COLUMNS),
            "top": [
                [_json_safe(v) for v in row]
                for row in telemetry.workload.top_rows(
                    top=WORKLOAD_TOP_K, by="latency"
                )
            ],
            "fingerprints": len(telemetry.workload),
            "evicted": telemetry.workload.evicted_total,
            "regressions": telemetry.workload.regressions_total(),
        },
        "slo": {
            "columns": list(SLO_COLUMNS),
            "rows": [[_json_safe(v) for v in row] for row in telemetry.slo.rows()],
            "models": {
                model: {k: _json_safe(v) for k, v in state.items()}
                for model, state in telemetry.slo.snapshot().items()
            },
        },
        "profile": {
            "columns": list(PROFILE_COLUMNS),
            "running": bool(telemetry.profiler.running),
            "samples": telemetry.profiler.sampled,
            "top": [
                [_json_safe(v) for v in row]
                for row in telemetry.profiler.top_rows(top=WORKLOAD_TOP_K)
            ],
            "collapsed": telemetry.profiler.collapsed(),
        },
    }
    # Cluster tier: the placement map and per-worker heartbeat/restart
    # state — which process hosted what, and who had been crashing.
    cluster = getattr(db, "_cluster", None)
    bundle["cluster"] = cluster.snapshot() if cluster is not None else None
    # Lifecycle tier: the versioned catalog's generation and publication
    # history plus every deployment's state-machine record — which
    # version was serving, what was mid-canary, and what rolled back why.
    deployments = getattr(db, "_deployments", None)
    bundle["lifecycle"] = (
        deployments.snapshot() if deployments is not None else None
    )
    server = getattr(db, "_server", None)
    if server is not None:
        bundle["server"] = [list(row) for row in server.stats_rows()]
    return bundle


def _breaker_rows(db) -> list[list]:
    rows: list[list] = []
    server = getattr(db, "_server", None)
    if server is not None and server.breakers is not None:
        rows.extend(list(row) for row in server.breakers.rows())
    executor = getattr(db, "_executor", None)
    if executor is not None and getattr(executor, "breakers", None) is not None:
        rows.extend(list(row) for row in executor.breakers.rows())
    return rows


def _span_dicts(tracer, max_spans: int) -> list[dict]:
    finished = getattr(tracer, "finished", [])
    return [
        {
            "name": s.name,
            "category": s.category,
            "span_id": s.span_id,
            "parent_id": s.parent_id,
            "trace_id": s.trace_id,
            "tid": s.tid,
            "start_s": s.start_s,
            "end_s": s.end_s,
            "args": {k: _json_safe(v) for k, v in s.args.items()},
        }
        for s in finished[-max_spans:]
    ]


def _json_safe(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (tuple, list)):
        return [_json_safe(v) for v in value]
    return str(value)


def write_bundle(bundle: dict, path: str) -> str:
    """Write one bundle as JSON; returns the path written."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(bundle, f, indent=2, default=str)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    return path


def validate_bundle(bundle: dict) -> list[str]:
    """Schema-check one bundle; returns a list of problems (empty = ok)."""
    problems: list[str] = []
    if not isinstance(bundle, dict):
        return [f"bundle must be a JSON object, got {type(bundle).__name__}"]
    for key in REQUIRED_KEYS:
        if key not in bundle:
            problems.append(f"missing required key {key!r}")
    if bundle.get("bundle_version") != BUNDLE_VERSION:
        problems.append(
            f"bundle_version must be {BUNDLE_VERSION}, "
            f"got {bundle.get('bundle_version')!r}"
        )
    if not isinstance(bundle.get("created_unix"), (int, float)):
        problems.append("created_unix must be a number")
    if not isinstance(bundle.get("config"), dict):
        problems.append("config must be an object")
    if not isinstance(bundle.get("metrics"), dict):
        problems.append("metrics must be an object")
    faults = bundle.get("faults")
    if not isinstance(faults, dict) or "seed" not in faults:
        problems.append("faults must be an object carrying the injector seed")
    for key in ("health", "breakers", "recovery_ledger", "events", "traces"):
        if key in bundle and not isinstance(bundle[key], list):
            problems.append(f"{key} must be an array")
    for i, event in enumerate(bundle.get("events", [])):
        if not isinstance(event, dict) or "kind" not in event or "seq" not in event:
            problems.append(f"events[{i}] must be an object with seq and kind")
            break
    workload = bundle.get("workload")
    if workload is not None:
        if not isinstance(workload, dict) or "top" not in workload:
            problems.append("workload must be an object carrying top rows")
        else:
            columns = workload.get("columns", [])
            for i, row in enumerate(workload.get("top", [])):
                if not isinstance(row, list) or len(row) != len(columns):
                    problems.append(
                        f"workload.top[{i}] must be a row matching "
                        "workload.columns"
                    )
                    break
    slo = bundle.get("slo")
    if slo is not None and (
        not isinstance(slo, dict) or not isinstance(slo.get("rows"), list)
    ):
        problems.append("slo must be an object carrying rows")
    profile = bundle.get("profile")
    if profile is not None:
        if not isinstance(profile, dict) or "collapsed" not in profile:
            problems.append("profile must be an object carrying collapsed stacks")
        else:
            for i, line in enumerate(profile.get("collapsed", [])):
                # Folded-stack format: "frame[;frame...] <count>".
                if (
                    not isinstance(line, str)
                    or " " not in line
                    or not line.rsplit(" ", 1)[1].isdigit()
                ):
                    problems.append(
                        f"profile.collapsed[{i}] must be a "
                        "'frames count' folded-stack line"
                    )
                    break
    if "cluster" in bundle:
        cluster = bundle["cluster"]
        if cluster is not None:
            # Attached-pool bundles must carry the placement map and the
            # per-worker heartbeat/restart rows.
            if not isinstance(cluster, dict) or not isinstance(
                cluster.get("placement"), dict
            ):
                problems.append(
                    "cluster must be null or an object carrying the "
                    "placement map"
                )
            elif not isinstance(cluster.get("workers"), list):
                problems.append("cluster.workers must be an array")
            else:
                for i, worker in enumerate(cluster["workers"]):
                    if not isinstance(worker, dict) or not {
                        "worker_id", "state", "restarts", "heartbeat_age_ms"
                    } <= set(worker):
                        problems.append(
                            f"cluster.workers[{i}] must carry worker_id, "
                            "state, restarts, and heartbeat_age_ms"
                        )
                        break
    if "lifecycle" in bundle:
        lifecycle = bundle["lifecycle"]
        if lifecycle is not None:
            if not isinstance(lifecycle, dict) or not isinstance(
                lifecycle.get("generation"), int
            ):
                problems.append(
                    "lifecycle must be null or an object carrying the "
                    "catalog generation"
                )
            elif not isinstance(lifecycle.get("deployments"), list):
                problems.append("lifecycle.deployments must be an array")
            else:
                columns = lifecycle.get("columns", [])
                for i, row in enumerate(lifecycle["deployments"]):
                    if not isinstance(row, list) or len(row) != len(columns):
                        problems.append(
                            f"lifecycle.deployments[{i}] must be a row "
                            "matching lifecycle.columns"
                        )
                        break
                for i, entry in enumerate(lifecycle.get("history", [])):
                    if not isinstance(entry, list) or len(entry) != 2:
                        problems.append(
                            f"lifecycle.history[{i}] must be a "
                            "[generation, change] pair"
                        )
                        break
    return problems
