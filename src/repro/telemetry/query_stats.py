"""Per-query execution statistics.

Every :class:`repro.session.Cursor` produced by a telemetry-enabled
:class:`~repro.session.Database` carries a :class:`QueryStats` in its
``stats`` attribute: the query's row count, wall-clock time, the
buffer-pool and result-cache traffic it caused (counter *deltas*, so
concurrent background work is the only noise source), the seconds spent
inside inference engines, and how many plan stages ran under each
representation — the paper's central observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class QueryStats:
    """Counter deltas and timings attributed to one executed statement."""

    sql: str
    statement: str
    rows: int
    elapsed_seconds: float
    pool_hits: int = 0
    pool_misses: int = 0
    pool_evictions: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    engine_seconds: float = 0.0
    #: plan stages executed per representation, e.g. {"udf-centric": 1}
    representations: dict[str, int] = field(default_factory=dict)
    #: estimate-vs-actual audit records for the inference stages this
    #: statement executed (:class:`~repro.telemetry.audit.StageAudit`).
    stage_audits: list = field(default_factory=list)
    #: trace id of the statement's root span (0 when tracing is disabled);
    #: feed it to ``SHOW TIMELINE <trace_id>`` to replay the request.
    trace_id: int = 0

    @property
    def audit_mispredictions(self) -> int:
        """Audited stages whose estimate disagreed with the runtime peak."""
        return sum(1 for audit in self.stage_audits if audit.mispredicted)

    @property
    def recovered_stages(self) -> int:
        """Stages this statement completed only via a runtime rescue
        (re-lowered to relation-centric, batch-split, or preemptively
        lowered by an open engine breaker)."""
        return sum(
            1 for audit in self.stage_audits if getattr(audit, "recovered", False)
        )

    @property
    def pool_hit_rate(self) -> float:
        total = self.pool_hits + self.pool_misses
        return self.pool_hits / total if total else 0.0

    def as_rows(self) -> list[tuple[str, object]]:
        """(stat, value) pairs, for rendering as a cursor."""
        rows: list[tuple[str, object]] = [
            ("statement", self.statement),
            ("rows", self.rows),
            ("elapsed_seconds", self.elapsed_seconds),
            ("pool_hits", self.pool_hits),
            ("pool_misses", self.pool_misses),
            ("pool_evictions", self.pool_evictions),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("engine_seconds", self.engine_seconds),
        ]
        if self.trace_id:
            rows.append(("trace_id", self.trace_id))
        for rep, count in sorted(self.representations.items()):
            rows.append((f"stages[{rep}]", count))
        if self.stage_audits:
            rows.append(("audit_stages", len(self.stage_audits)))
            rows.append(("audit_mispredictions", self.audit_mispredictions))
            if self.recovered_stages:
                rows.append(("recovered_stages", self.recovered_stages))
        return rows

    def render(self) -> str:
        """A one-query human-readable report."""
        lines = [f"{self.statement}: {self.rows} rows in {self.elapsed_seconds * 1e3:.2f}ms"]
        lines.append(
            f"  buffer pool: {self.pool_hits} hits / {self.pool_misses} misses"
            f" ({self.pool_hit_rate:.0%} hit rate), {self.pool_evictions} evictions"
        )
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"  result cache: {self.cache_hits} hits / {self.cache_misses} misses"
            )
        if self.representations:
            reps = ", ".join(
                f"{rep}={count}" for rep, count in sorted(self.representations.items())
            )
            lines.append(
                f"  engines: {self.engine_seconds * 1e3:.2f}ms in stages [{reps}]"
            )
        for audit in self.stage_audits:
            line = (
                f"  audit: {audit.model} stage{audit.stage_index} "
                f"[{audit.representation}] est={audit.estimated_bytes:,}B "
                f"actual={audit.actual_peak_bytes:,}B -> {audit.verdict}"
            )
            if getattr(audit, "recovery", ""):
                line += f" (recovery: {audit.recovery})"
            lines.append(line)
        return "\n".join(lines)
