"""Plan-quality audit: the optimizer's memory estimates vs runtime peaks.

The rule-based optimizer (Sec. 7.1) routes every operator by an
*estimated* memory requirement (``input + params + output``).  The
engines meanwhile charge real allocations against deterministic
:class:`~repro.dlruntime.memory.MemoryBudget` objects and report a
per-stage ``peak_memory_bytes`` — a number that used to be dropped on the
floor.  This module closes the loop: the hybrid executor records one
:class:`StageAudit` per executed plan stage, pairing the estimate that
routed the stage with the peak the engine actually reached, and the
auditor classifies each record:

* ``ok`` — the estimate held (actual within the tolerance band);
* ``under-estimate`` — the stage used more than the optimizer budgeted
  (e.g. "UDF stage exceeded its estimate by 2.1x");
* ``over-estimate`` — the stage used far less than budgeted (the rule
  was needlessly pessimistic for this operator);
* ``threshold-breach`` — a whole-tensor (UDF/DL-centric) stage's actual
  peak crossed the routing threshold itself: the rule *should* have
  lowered it to relation-centric;
* ``unnecessary-lowering`` — a stage lowered to relation-centric whose
  actual peak stayed comfortably under the threshold (bounded streaming
  was not needed at this batch size).

Everything lands in three surfaces: registry metrics
(``audit_stage_records_total``, ``audit_mispredictions_total``,
``audit_estimate_ratio``, ``engine_peak_memory_bytes``), the ``SHOW
AUDIT`` SQL statement, and per-query ``Cursor.stats``.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Iterator

#: Byte-scaled histogram buckets (64 KiB .. 1 GiB) for memory peaks.
PEAK_BYTE_BUCKETS: tuple[float, ...] = tuple(
    float(1 << p) for p in range(16, 31, 2)
)

#: Ratio buckets for actual/estimated memory.
RATIO_BUCKETS: tuple[float, ...] = (
    0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0, 4.0, 8.0,
)

#: actual > estimate * OVER_FACTOR counts as an under-estimate;
#: actual < estimate / OVER_FACTOR**2 counts as an over-estimate.
DEFAULT_OVER_FACTOR = 1.25

#: A relation-centric stage whose actual peak is below
#: threshold * UNDER_FRACTION is flagged as unnecessary lowering.
DEFAULT_UNDER_FRACTION = 0.9


@dataclass(frozen=True)
class StageAudit:
    """One executed plan stage: what was planned vs what happened."""

    model: str
    stage_index: int
    representation: str
    ops: str
    rows: int
    elapsed_seconds: float
    estimated_bytes: int
    actual_peak_bytes: int
    threshold_bytes: int
    verdict: str
    note: str
    #: Runtime-resilience outcome for this stage: ``""`` (ran as planned),
    #: ``"relowered"`` (rescued to relation-centric after OOM/timeout),
    #: ``"split(n)"`` (rescued by splitting the batch into n pieces),
    #: ``"preemptive"`` (lowered before running: engine breaker open), or
    #: ``"gave-up"`` (recovery budget exhausted; the error propagated).
    recovery: str = ""

    @property
    def recovered(self) -> bool:
        """True when the stage completed only thanks to a rescue."""
        return self.recovery not in ("", "gave-up")

    @property
    def ratio(self) -> float:
        """actual / estimated peak bytes (0.0 when there is no estimate)."""
        if self.estimated_bytes <= 0:
            return 0.0
        return self.actual_peak_bytes / self.estimated_bytes

    @property
    def mispredicted(self) -> bool:
        return self.verdict != "ok"

    def as_row(self) -> tuple:
        """The ``SHOW AUDIT`` row for this record."""
        return (
            self.model,
            self.stage_index,
            self.representation,
            self.ops,
            self.rows,
            round(self.elapsed_seconds * 1e3, 3),
            self.estimated_bytes,
            self.actual_peak_bytes,
            round(self.ratio, 4),
            self.verdict,
            self.note,
            self.recovery,
        )


#: Column names for ``SHOW AUDIT`` cursors, aligned with ``as_row``.
AUDIT_COLUMNS: tuple[str, ...] = (
    "model",
    "stage",
    "representation",
    "ops",
    "rows",
    "time_ms",
    "estimated_bytes",
    "actual_peak_bytes",
    "ratio",
    "verdict",
    "note",
    "recovery",
)


def classify(
    representation: str,
    estimated_bytes: int,
    actual_peak_bytes: int,
    threshold_bytes: int,
    over_factor: float = DEFAULT_OVER_FACTOR,
    under_fraction: float = DEFAULT_UNDER_FRACTION,
) -> tuple[str, str]:
    """(verdict, human note) for one stage's estimate-vs-actual pair."""
    if representation == "relation-centric":
        # Lowered stages run bounded (stripe-at-a-time); the meaningful
        # comparison is the actual peak against the routing threshold.
        if threshold_bytes > 0 and actual_peak_bytes < threshold_bytes * under_fraction:
            margin = 1.0 - actual_peak_bytes / threshold_bytes
            return (
                "unnecessary-lowering",
                f"lowered to relation-centric but actual peak was "
                f"{margin:.0%} under threshold",
            )
        return "ok", "bounded execution near threshold"
    if threshold_bytes > 0 and actual_peak_bytes > threshold_bytes:
        return (
            "threshold-breach",
            f"{representation} stage peaked at {actual_peak_bytes:,}B, over "
            f"the {threshold_bytes:,}B routing threshold",
        )
    if estimated_bytes <= 0:
        return "ok", "no estimate recorded for this stage"
    ratio = actual_peak_bytes / estimated_bytes
    if ratio > over_factor:
        return (
            "under-estimate",
            f"{representation} stage exceeded its estimate by {ratio:.1f}x",
        )
    if ratio < 1.0 / (over_factor * over_factor):
        return (
            "over-estimate",
            f"actual peak was only {ratio:.0%} of the estimate",
        )
    return "ok", f"actual peak within {ratio:.0%} of estimate"


class PlanAuditor:
    """Collects estimate-vs-actual records and drives the audit metrics.

    A bounded ring of the most recent :class:`StageAudit` records backs
    ``SHOW AUDIT``; ``total_recorded`` grows without bound so callers can
    take a :meth:`marker` before a statement and slice the records that
    statement produced with :meth:`records_since`.

    All mutation happens under one lock so concurrent engine runs (the
    serving front-end's worker pool) cannot drop records or double-count
    ``total_recorded``.
    """

    enabled = True

    def __init__(
        self,
        registry,
        max_records: int = 1024,
        over_factor: float = DEFAULT_OVER_FACTOR,
        under_fraction: float = DEFAULT_UNDER_FRACTION,
    ):
        self._records: deque[StageAudit] = deque(maxlen=max_records)
        self.total_recorded = 0
        self._lock = threading.Lock()
        self._over_factor = over_factor
        self._under_fraction = under_fraction
        self._registry = registry
        self._m_records = {
            rep: registry.counter(
                "audit_stage_records_total",
                "Executed plan stages audited, by representation",
                representation=rep,
            )
            for rep in ("udf-centric", "relation-centric", "dl-centric")
        }
        self._m_ratio = registry.histogram(
            "audit_estimate_ratio",
            "Actual peak bytes / estimated bytes per executed stage",
            buckets=RATIO_BUCKETS,
        )
        self._m_mispredictions: dict[tuple[str, str], object] = {}
        self._m_peaks: dict[str, object] = {}

    # -- raw engine peaks -------------------------------------------------

    def observe_peak(self, engine: str, peak_bytes: int) -> None:
        """Record one engine invocation's peak memory (any entry point)."""
        histogram = self._m_peaks.get(engine)
        if histogram is None:
            with self._lock:
                histogram = self._m_peaks.get(engine)
                if histogram is None:
                    histogram = self._registry.histogram(
                        "engine_peak_memory_bytes",
                        "Peak bytes charged per engine invocation",
                        buckets=PEAK_BYTE_BUCKETS,
                        engine=engine,
                    )
                    self._m_peaks[engine] = histogram
        histogram.observe(float(peak_bytes))

    # -- per-stage estimate-vs-actual records -----------------------------

    def record_stage(
        self,
        model: str,
        stage_index: int,
        representation: str,
        ops: str,
        rows: int,
        elapsed_seconds: float,
        estimated_bytes: int,
        actual_peak_bytes: int,
        threshold_bytes: int,
        recovery: str = "",
    ) -> StageAudit:
        verdict, note = classify(
            representation,
            estimated_bytes,
            actual_peak_bytes,
            threshold_bytes,
            over_factor=self._over_factor,
            under_fraction=self._under_fraction,
        )
        audit = StageAudit(
            model=model,
            stage_index=stage_index,
            representation=representation,
            ops=ops,
            rows=rows,
            elapsed_seconds=elapsed_seconds,
            estimated_bytes=estimated_bytes,
            actual_peak_bytes=actual_peak_bytes,
            threshold_bytes=threshold_bytes,
            verdict=verdict,
            note=note,
            recovery=recovery,
        )
        with self._lock:
            self._records.append(audit)
            self.total_recorded += 1
            mis = None
            if audit.mispredicted:
                key = (representation, verdict)
                mis = self._m_mispredictions.get(key)
                if mis is None:
                    mis = self._registry.counter(
                        "audit_mispredictions_total",
                        "Audited stages whose estimate disagreed with runtime",
                        representation=representation,
                        verdict=verdict,
                    )
                    self._m_mispredictions[key] = mis
        counter = self._m_records.get(representation)
        if counter is not None:
            counter.inc()
        if estimated_bytes > 0:
            self._m_ratio.observe(audit.ratio)
        if mis is not None:
            mis.inc()
        return audit

    # -- query surfaces ---------------------------------------------------

    @property
    def records(self) -> list[StageAudit]:
        with self._lock:
            return list(self._records)

    def __iter__(self) -> Iterator[StageAudit]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self._records)

    def marker(self) -> int:
        """An opaque position; pass to :meth:`records_since` later."""
        return self.total_recorded

    def records_since(self, marker: int) -> list[StageAudit]:
        """Records appended after ``marker`` (bounded by the ring size)."""
        with self._lock:
            new = self.total_recorded - marker
            if new <= 0:
                return []
            return list(self._records)[-min(new, len(self._records)):]

    def mispredictions(self) -> list[StageAudit]:
        return [a for a in self.records if a.mispredicted]

    def rows(self) -> list[tuple]:
        """``SHOW AUDIT`` rows, oldest record first."""
        return [audit.as_row() for audit in self.records]

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.total_recorded = 0


class NullAuditor:
    """No-op auditor used when telemetry is disabled."""

    enabled = False
    total_recorded = 0

    def observe_peak(self, engine: str, peak_bytes: int) -> None:
        pass

    def record_stage(self, *args: object, **kwargs: object) -> None:
        return None

    @property
    def records(self) -> list[StageAudit]:
        return []

    def __iter__(self) -> Iterator[StageAudit]:
        return iter(())

    def __len__(self) -> int:
        return 0

    def marker(self) -> int:
        return 0

    def records_since(self, marker: int) -> list[StageAudit]:
        return []

    def mispredictions(self) -> list[StageAudit]:
        return []

    def rows(self) -> list[tuple]:
        return []

    def clear(self) -> None:
        pass


#: Shared no-op auditor for disabled telemetry.
NULL_AUDITOR = NullAuditor()
