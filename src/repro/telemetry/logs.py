"""The ``repro`` logging namespace.

Every subsystem logs under ``repro.<subsystem>`` (e.g.
``repro.optimizer`` emits a DEBUG record per representation decision).
Following library convention, the root ``repro`` logger carries a
:class:`logging.NullHandler` so an embedding application sees nothing
unless it configures logging itself — or calls
:func:`enable_console_logging` for a quick interactive setup::

    from repro.telemetry import enable_console_logging
    enable_console_logging()          # DEBUG to stderr
"""

from __future__ import annotations

import logging

ROOT_LOGGER_NAME = "repro"

_root = logging.getLogger(ROOT_LOGGER_NAME)
if not any(isinstance(h, logging.NullHandler) for h in _root.handlers):
    _root.addHandler(logging.NullHandler())


def get_logger(subsystem: str | None = None) -> logging.Logger:
    """The logger for one subsystem (``repro.<subsystem>``), or the root."""
    if not subsystem:
        return _root
    return _root.getChild(subsystem)


def enable_console_logging(level: int = logging.DEBUG) -> logging.Handler:
    """Attach a stderr handler to the ``repro`` namespace.

    Returns the handler so callers can detach it again with
    ``logging.getLogger("repro").removeHandler(handler)``.
    """
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
    )
    handler.setLevel(level)
    _root.addHandler(handler)
    _root.setLevel(min(level, _root.level or level))
    return handler
