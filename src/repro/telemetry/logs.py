"""The ``repro`` logging namespace, trace-correlated.

Every subsystem logs under ``repro.<subsystem>`` (e.g.
``repro.optimizer`` emits a DEBUG record per representation decision).
Following library convention, the root ``repro`` logger carries a
:class:`logging.NullHandler` so an embedding application sees nothing
unless it configures logging itself — or calls
:func:`enable_console_logging` for a quick interactive setup::

    from repro.telemetry import enable_console_logging
    enable_console_logging()          # DEBUG to stderr

Log records are **trace-correlated**: a :class:`TraceContextFilter`
(attached automatically by :func:`enable_console_logging`, attachable to
any handler) stamps every record with the ``trace_id`` / ``span_id`` of
the span active on the emitting thread, so a grep for one request's
trace id joins its log lines against ``SHOW TIMELINE`` and the exported
Chrome trace.  Tracers register themselves here on construction (via a
weak set, so a closed Database's tracer never pins memory); records
emitted outside any span carry ``trace_id=0 span_id=0``.
"""

from __future__ import annotations

import logging
import weakref

ROOT_LOGGER_NAME = "repro"

#: Log format that surfaces the correlation ids stamped by
#: :class:`TraceContextFilter`.
TRACE_LOG_FORMAT = (
    "%(asctime)s %(name)s %(levelname)s "
    "[trace=%(trace_id)s span=%(span_id)s] %(message)s"
)

_root = logging.getLogger(ROOT_LOGGER_NAME)
if not any(isinstance(h, logging.NullHandler) for h in _root.handlers):
    _root.addHandler(logging.NullHandler())

# Live tracers whose per-thread span stacks the filter consults.  Weak so
# that log correlation never keeps a closed Database's tracer alive.
_ACTIVE_TRACERS: "weakref.WeakSet" = weakref.WeakSet()


def register_tracer(tracer) -> None:
    """Make a tracer's active spans visible to log correlation."""
    _ACTIVE_TRACERS.add(tracer)


def current_trace_ids() -> tuple[int, int]:
    """(trace_id, span_id) of the span active on this thread, or (0, 0).

    With several live Databases the first registered tracer with an
    active span on the calling thread wins — spans are thread-local, so
    in practice at most one tracer has one.
    """
    for tracer in list(_ACTIVE_TRACERS):
        context = tracer.current_context()
        if context is not None:
            return context.trace_id, context.span_id
    return 0, 0


class TraceContextFilter(logging.Filter):
    """Stamp ``record.trace_id`` / ``record.span_id`` from the active span.

    Implemented as a filter (that always passes) rather than a formatter
    so it composes with any formatter and the ids are available to
    structured handlers too.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        record.trace_id, record.span_id = current_trace_ids()
        return True


def get_logger(subsystem: str | None = None) -> logging.Logger:
    """The logger for one subsystem (``repro.<subsystem>``), or the root."""
    if not subsystem:
        return _root
    return _root.getChild(subsystem)


def enable_console_logging(level: int = logging.DEBUG) -> logging.Handler:
    """Attach a trace-correlated stderr handler to the ``repro`` namespace.

    Returns the handler so callers can detach it again with
    ``logging.getLogger("repro").removeHandler(handler)``.
    """
    handler = logging.StreamHandler()
    handler.addFilter(TraceContextFilter())
    handler.setFormatter(logging.Formatter(TRACE_LOG_FORMAT))
    handler.setLevel(level)
    _root.addHandler(handler)
    _root.setLevel(min(level, _root.level or level))
    return handler
