"""Sampling stage profiler: where does plan time actually go?

Instead of instrumenting every stage with timers (which the tracer
already does, at per-call cost), the profiler answers the aggregate
question — *which plan stages dominate wall time across the whole
workload* — by statistical sampling: the engine marks the stage each
worker thread is currently executing (:meth:`StageProfiler.enter` /
:meth:`StageProfiler.exit`, a plain dict store/delete), and a background
daemon thread wakes every ``interval_ms`` and attributes one sample to
every marked frame.  Sampling cost is therefore independent of query
rate, and when the sampler is stopped the hot-path hooks reduce to a
single attribute check.

Frames are ``"<model>;stage<i>:<representation>"`` — already one level of
a collapsed call stack — so :meth:`collapsed` / :meth:`export` emit the
folded-stack format consumed by ``flamegraph.pl`` and speedscope
("semicolon-joined frames, space, count" per line) with a ``repro`` root
frame prepended.
"""

from __future__ import annotations

import threading

from ..errors import TelemetryError

#: Columns for ``SHOW PROFILE`` cursors.
PROFILE_COLUMNS: tuple[str, ...] = (
    "frame",
    "samples",
    "est_ms",
    "share",
)

#: Catch-all frame once ``max_frames`` distinct stages are tracked.
OVERFLOW_FRAME = "<other>"

#: Root frame prepended to every collapsed stack line.
ROOT_FRAME = "repro"


class StageProfiler:
    """Wall-clock sampler attributing time to executing plan stages.

    Thread-safe; one instance per :class:`~repro.session.Database`.  The
    sampler thread is started explicitly (``Database.start_profiler()``
    or the ``profiler_enabled`` config knob) and the enter/exit hooks are
    near-free while it is stopped — the engine only pays the dict writes
    when someone is actually profiling.
    """

    enabled = True

    def __init__(
        self,
        interval_ms: float = 5.0,
        max_frames: int = 256,
        metrics=None,
    ):
        if interval_ms <= 0:
            raise TelemetryError("profiler interval_ms must be positive")
        if max_frames < 1:
            raise TelemetryError("profiler max_frames must be >= 1")
        self.interval_s = interval_ms / 1e3
        self.interval_ms = interval_ms
        self.max_frames = max_frames
        self.running = False
        self._active: dict[int, str] = {}  # thread id -> current frame
        self._counts: dict[str, int] = {}
        self._ticks = 0  # sampler wakeups
        self._sampled = 0  # samples attributed to frames
        self._idle_ticks = 0  # wakeups with no stage executing anywhere
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        if metrics is not None:
            self._m_samples = metrics.counter(
                "profiler_samples_total", "Stage samples attributed"
            )
            self._m_running = metrics.gauge(
                "profiler_running", "1 while the sampling profiler is active"
            )
        else:
            self._m_samples = None
            self._m_running = None

    # -- hot-path hooks (called by the engine around every stage) --------

    def enter(self, frame: str) -> None:
        if not self.running:
            return
        self._active[threading.get_ident()] = frame

    def exit(self) -> None:
        if not self.running:
            return
        self._active.pop(threading.get_ident(), None)

    # -- sampler lifecycle -----------------------------------------------

    def start(self) -> bool:
        """Start the background sampler; False if already running."""
        with self._lock:
            if self.running:
                return False
            self._stop_event.clear()
            self.running = True
            self._thread = threading.Thread(
                target=self._sample_loop, name="repro-profiler", daemon=True
            )
            self._thread.start()
        if self._m_running is not None:
            self._m_running.set(1)
        return True

    def stop(self) -> bool:
        """Stop the sampler (accumulated samples are kept); False if idle."""
        with self._lock:
            if not self.running:
                return False
            self.running = False
            self._stop_event.set()
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join(timeout=2.0)
        self._active.clear()
        if self._m_running is not None:
            self._m_running.set(0)
        return True

    def _sample_loop(self) -> None:
        while not self._stop_event.wait(self.interval_s):
            frames = list(self._active.values())
            with self._lock:
                self._ticks += 1
                if not frames:
                    self._idle_ticks += 1
                    continue
                for frame in frames:
                    if (
                        frame not in self._counts
                        and len(self._counts) >= self.max_frames
                    ):
                        frame = OVERFLOW_FRAME
                    self._counts[frame] = self._counts.get(frame, 0) + 1
                    self._sampled += 1
            if self._m_samples is not None:
                self._m_samples.inc(len(frames))

    # -- results ---------------------------------------------------------

    @property
    def ticks(self) -> int:
        return self._ticks

    @property
    def sampled(self) -> int:
        return self._sampled

    @property
    def idle_ticks(self) -> int:
        return self._idle_ticks

    def top_rows(self, top: int | None = None) -> list[tuple]:
        """``SHOW PROFILE`` rows (:data:`PROFILE_COLUMNS`), hottest first.

        ``est_ms`` scales sample counts by the sampling interval — an
        unbiased wall-time estimate whose error shrinks with sample
        count; ``share`` is the frame's fraction of all attributed
        samples.
        """
        with self._lock:
            counts = dict(self._counts)
            sampled = self._sampled
        rows = [
            (
                frame,
                count,
                round(count * self.interval_ms, 3),
                round(count / sampled, 4) if sampled else 0.0,
            )
            for frame, count in sorted(
                counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        if top is not None:
            rows = rows[:top]
        return rows

    def collapsed(self) -> list[str]:
        """Folded-stack lines (``root;frame count``) for flamegraph tools."""
        with self._lock:
            counts = dict(self._counts)
        return [
            f"{ROOT_FRAME};{frame} {count}"
            for frame, count in sorted(counts.items())
        ]

    def export(self, path) -> int:
        """Write the collapsed-stack profile to ``path``; returns lines."""
        lines = self.collapsed()
        with open(path, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")
        return len(lines)

    def stats_rows(self) -> list[tuple[str, object]]:
        """(stat, value) pairs for SHOW STATS / diagnostics."""
        with self._lock:
            return [
                ("running", self.running),
                ("interval_ms", self.interval_ms),
                ("ticks", self._ticks),
                ("samples", self._sampled),
                ("idle_ticks", self._idle_ticks),
                ("frames", len(self._counts)),
            ]

    def clear(self) -> None:
        """Drop accumulated samples (the sampler keeps running if started)."""
        with self._lock:
            self._counts.clear()
            self._ticks = 0
            self._sampled = 0
            self._idle_ticks = 0


class NullStageProfiler:
    """No-op profiler for disabled telemetry."""

    enabled = False
    running = False
    ticks = 0
    sampled = 0
    idle_ticks = 0
    interval_ms = 0.0

    def enter(self, frame: str) -> None:
        pass

    def exit(self) -> None:
        pass

    def start(self) -> bool:
        return False

    def stop(self) -> bool:
        return False

    def top_rows(self, top: int | None = None) -> list[tuple]:
        return []

    def collapsed(self) -> list[str]:
        return []

    def export(self, path) -> int:
        return 0

    def stats_rows(self) -> list[tuple[str, object]]:
        return []

    def clear(self) -> None:
        pass


#: Shared no-op profiler for disabled telemetry.
NULL_PROFILER = NullStageProfiler()
