"""Per-model service-level objectives and burn-rate evaluation.

An SLO here is declarative: "p(request bad) stays under ``error_budget``",
where a request is *bad* when it failed outright or finished slower than
``latency_ms``.  The tracker keeps one sliding sample window per model
(timestamped good/bad outcomes fed from the serving layer) and evaluates
the classic multi-window burn rate over it:

    burn = (bad fraction in window) / error_budget

A burn rate of 1.0 consumes the budget exactly as fast as allowed; above
the configured threshold the objective is *burning*.  Two windows are
evaluated — a **fast** one (default 1 minute) that reacts to acute
incidents within seconds of them starting, and a **slow** one (default
1 hour) that confirms sustained burns and suppresses one-off blips.  The
combination maps onto health states: fast burning alone is ``DEGRADED``
(page-soon), fast *and* slow burning is ``FAILING`` (page-now).

Transitions are observable three ways: ``slo.burn_start`` /
``slo.burn_stop`` flight-recorder events, ``slo_burn_rate`` gauges per
model and window, and the ``SHOW SLO`` cursor rendered from
:meth:`SloTracker.rows`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from ..errors import TelemetryError

#: Columns for ``SHOW SLO`` cursors: one row per (model, window).
SLO_COLUMNS: tuple[str, ...] = (
    "model",
    "objective",
    "target",
    "window",
    "samples",
    "bad",
    "burn_rate",
    "status",
)


@dataclass(frozen=True)
class SloPolicy:
    """One model's declared objective.

    ``latency_ms`` of 0 disables the latency component (only outright
    failures count as bad); ``error_budget`` is the tolerated bad
    fraction (0.01 = 99% of requests good).
    """

    model: str
    latency_ms: float = 0.0
    error_budget: float = 0.01

    def __post_init__(self) -> None:
        if self.latency_ms < 0:
            raise TelemetryError("slo latency_ms must be >= 0")
        if not 0 < self.error_budget <= 1:
            raise TelemetryError("slo error_budget must be in (0, 1]")


class _ModelState:
    __slots__ = ("policy", "samples", "burning_fast", "burning_slow")

    def __init__(self, policy: SloPolicy, max_samples: int):
        self.policy = policy
        # (timestamp, bad) pairs, oldest first; bounded so a hot model
        # cannot grow memory without bound between window sweeps.
        self.samples: deque[tuple[float, bool]] = deque(maxlen=max_samples)
        self.burning_fast = False
        self.burning_slow = False


class SloTracker:
    """Sliding-window burn-rate evaluation over per-model outcomes.

    ``observe`` is called once per finished serving request; evaluation
    is incremental and O(evicted samples), so the serving hot path pays a
    deque append, a window trim, and two divisions.
    """

    enabled = True

    def __init__(
        self,
        fast_window_s: float = 60.0,
        slow_window_s: float = 3600.0,
        min_samples: int = 8,
        burn_threshold: float = 1.0,
        max_samples: int = 4096,
        default_latency_ms: float = 0.0,
        default_error_budget: float = 0.01,
        metrics=None,
        recorder=None,
        clock=time.monotonic,
    ):
        if fast_window_s <= 0 or slow_window_s <= 0:
            raise TelemetryError("slo windows must be positive")
        if slow_window_s < fast_window_s:
            raise TelemetryError(
                "slo slow window must be at least as long as the fast window"
            )
        if min_samples < 1:
            raise TelemetryError("slo min_samples must be >= 1")
        if burn_threshold <= 0:
            raise TelemetryError("slo burn_threshold must be positive")
        self.fast_window_s = fast_window_s
        self.slow_window_s = slow_window_s
        self.min_samples = min_samples
        self.burn_threshold = burn_threshold
        self.max_samples = max_samples
        self.default_latency_ms = default_latency_ms
        self.default_error_budget = default_error_budget
        self._clock = clock
        self._models: dict[str, _ModelState] = {}
        self._lock = threading.Lock()
        self._metrics = metrics
        self._recorder = recorder
        self._gauges: dict[tuple[str, str], object] = {}

    # -- policy management ----------------------------------------------

    def set_policy(
        self,
        model: str,
        latency_ms: float = 0.0,
        error_budget: float = 0.01,
    ) -> SloPolicy:
        """Declare (or replace) one model's objective; samples persist."""
        policy = SloPolicy(model, latency_ms, error_budget)
        with self._lock:
            state = self._models.get(model)
            if state is None:
                self._models[model] = _ModelState(policy, self.max_samples)
            else:
                state.policy = policy
        return policy

    def policies(self) -> list[SloPolicy]:
        with self._lock:
            return [state.policy for state in self._models.values()]

    # -- the hot path ----------------------------------------------------

    def observe(self, model: str, ok: bool, latency_ms: float) -> None:
        """Fold one finished request into the model's window.

        Models without an explicit policy are auto-registered with the
        session defaults, but only when a default latency objective is
        configured — otherwise unconfigured models stay untracked and
        ``SHOW SLO`` stays empty, preserving the opt-in contract.
        """
        now = self._clock()
        with self._lock:
            state = self._models.get(model)
            if state is None:
                if self.default_latency_ms <= 0:
                    return
                state = _ModelState(
                    SloPolicy(
                        model, self.default_latency_ms, self.default_error_budget
                    ),
                    self.max_samples,
                )
                self._models[model] = state
            policy = state.policy
            bad = (not ok) or (
                policy.latency_ms > 0 and latency_ms > policy.latency_ms
            )
            state.samples.append((now, bad))
            self._evaluate_locked(model, state, now)

    # -- evaluation ------------------------------------------------------

    def _window_stats(
        self, state: _ModelState, now: float, window_s: float
    ) -> tuple[int, int, float]:
        """(samples, bad, burn rate) for one window ending at ``now``."""
        cutoff = now - window_s
        total = 0
        bad = 0
        for ts, was_bad in reversed(state.samples):
            if ts < cutoff:
                break
            total += 1
            if was_bad:
                bad += 1
        if total < self.min_samples:
            return total, bad, 0.0
        return total, bad, (bad / total) / state.policy.error_budget

    def _gauge(self, model: str, window: str):
        key = (model, window)
        gauge = self._gauges.get(key)
        if gauge is None and self._metrics is not None:
            gauge = self._metrics.gauge(
                "slo_burn_rate",
                "Error-budget burn rate (1.0 = spending exactly on budget)",
                model=model,
                window=window,
            )
            self._gauges[key] = gauge
        return gauge

    def _evaluate_locked(self, model: str, state: _ModelState, now: float) -> None:
        for window, window_s, attr in (
            ("fast", self.fast_window_s, "burning_fast"),
            ("slow", self.slow_window_s, "burning_slow"),
        ):
            total, bad, burn = self._window_stats(state, now, window_s)
            gauge = self._gauge(model, window)
            if gauge is not None:
                gauge.set(round(burn, 6))
            burning = burn >= self.burn_threshold
            was_burning = getattr(state, attr)
            if burning == was_burning:
                continue
            setattr(state, attr, burning)
            if self._recorder is not None:
                self._recorder.emit(
                    "slo.burn_start" if burning else "slo.burn_stop",
                    model=model,
                    window=window,
                    burn_rate=round(burn, 4),
                    samples=total,
                    bad=bad,
                    threshold=self.burn_threshold,
                )

    # -- rendering -------------------------------------------------------

    def rows(self) -> list[tuple]:
        """``SHOW SLO`` rows (:data:`SLO_COLUMNS`): two per tracked model."""
        now = self._clock()
        out: list[tuple] = []
        with self._lock:
            for model in sorted(self._models):
                state = self._models[model]
                policy = state.policy
                objective = (
                    f"latency<={policy.latency_ms:g}ms"
                    if policy.latency_ms > 0
                    else "errors"
                )
                target = round(1.0 - policy.error_budget, 6)
                for window, window_s in (
                    ("fast", self.fast_window_s),
                    ("slow", self.slow_window_s),
                ):
                    total, bad, burn = self._window_stats(state, now, window_s)
                    burning = burn >= self.burn_threshold
                    out.append(
                        (
                            model,
                            objective,
                            target,
                            f"{window}:{window_s:g}s",
                            total,
                            bad,
                            round(burn, 4),
                            "burning" if burning else "ok",
                        )
                    )
        return out

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Per-model burn state for :func:`repro.health.collect`."""
        now = self._clock()
        out: dict[str, dict[str, object]] = {}
        with self._lock:
            for model, state in self._models.items():
                f_total, f_bad, f_burn = self._window_stats(
                    state, now, self.fast_window_s
                )
                s_total, s_bad, s_burn = self._window_stats(
                    state, now, self.slow_window_s
                )
                out[model] = {
                    "latency_ms": state.policy.latency_ms,
                    "error_budget": state.policy.error_budget,
                    "fast_burn": round(f_burn, 4),
                    "slow_burn": round(s_burn, 4),
                    "fast_samples": f_total,
                    "slow_samples": s_total,
                    "fast_bad": f_bad,
                    "slow_bad": s_bad,
                    "burning_fast": f_burn >= self.burn_threshold,
                    "burning_slow": s_burn >= self.burn_threshold,
                }
        return out

    def clear(self) -> None:
        with self._lock:
            self._models.clear()


class NullSloTracker:
    """No-op tracker for disabled telemetry."""

    enabled = False

    def set_policy(
        self, model: str, latency_ms: float = 0.0, error_budget: float = 0.01
    ) -> None:
        return None

    def policies(self) -> list[SloPolicy]:
        return []

    def observe(self, model: str, ok: bool, latency_ms: float) -> None:
        pass

    def rows(self) -> list[tuple]:
        return []

    def snapshot(self) -> dict[str, dict[str, object]]:
        return {}

    def clear(self) -> None:
        pass


#: Shared no-op tracker for disabled telemetry.
NULL_SLO = NullSloTracker()
