"""The flight recorder: a bounded ring of typed structured events.

A :class:`FlightRecorder` is the system's black box.  Every layer that
makes a request-visible decision emits one :class:`Event` — request
admitted/shed/rejected/retried/expired/completed, batch formed and
executed, engine stage rescued or given up, breaker transitions, fault
injections, sidecar commits, result-cache hits and misses — into a
``deque(maxlen=...)`` ring that keeps the newest events and counts
evictions, so a postmortem always has the last-N record of *what
happened, in order* even after hours of traffic.

Events carry the emitting request's ``trace_id`` when one is active, so
the ring joins against the span tracer: ``SHOW EVENTS [WHERE ...]``
queries the ring relationally and ``SHOW TIMELINE <trace_id>`` replays
one request's lifecycle (see :func:`timeline_rows`).

When telemetry is disabled the shared :data:`NULL_RECORDER` is used:
``emit`` is a single no-op method call, preserving the disabled fast
path's overhead contract.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

#: Event kinds the system emits (free-form kinds are allowed; these are
#: the ones wired in and asserted on by tests).
EVENT_KINDS: tuple[str, ...] = (
    "admission.decision",
    "request.admitted",
    "request.rejected",
    "request.shed",
    "request.broken",
    "request.expired",
    "request.retried",
    "request.completed",
    "request.failed",
    "batch.formed",
    "batch.executed",
    "batch.isolated",
    "stage.rescued",
    "stage.gave_up",
    "breaker.open",
    "breaker.half_open",
    "breaker.closed",
    "fault.injected",
    "sidecar.commit",
    "cache.hit",
    "cache.miss",
    "server.worker_error",
    "cluster.spawn",
    "cluster.crash",
    "cluster.respawn",
    "cluster.reroute",
    "cluster.shm_fallback",
    "cluster.load_error",
    "slo.burn_start",
    "slo.burn_stop",
    "workload.regression",
    "lifecycle.publish",
    "deploy.prepare",
    "deploy.start",
    "deploy.state",
    "deploy.promote",
    "deploy.rollback",
    "deploy.shadow_diverged",
    "server.drain_abandoned",
    "cluster.rolling_restart",
)

#: Columns for ``SHOW EVENTS`` cursors.
EVENT_COLUMNS: tuple[str, ...] = ("seq", "ts_ms", "kind", "trace_id", "detail")

#: Columns for ``SHOW TIMELINE <trace_id>`` cursors.
TIMELINE_COLUMNS: tuple[str, ...] = ("at_ms", "source", "what", "detail")


@dataclass(frozen=True)
class Event:
    """One structured flight-recorder entry."""

    seq: int
    ts_s: float  # time.perf_counter epoch, same clock as tracer spans
    kind: str
    trace_id: int | None = None
    fields: tuple[tuple[str, object], ...] = ()

    def get(self, key: str, default: object = None) -> object:
        for k, v in self.fields:
            if k == key:
                return v
        return default

    @property
    def detail(self) -> str:
        return " ".join(f"{k}={v}" for k, v in self.fields)

    def involves(self, trace_id: int) -> bool:
        """True when this event belongs to (or links) the given trace."""
        if self.trace_id == trace_id:
            return True
        traces = self.get("traces")
        return isinstance(traces, (tuple, list)) and trace_id in traces


class FlightRecorder:
    """A thread-safe bounded event ring (keeps newest, counts evictions)."""

    enabled = True

    def __init__(self, max_events: int = 4096, metrics=None):
        if max_events < 1:
            from ..errors import TelemetryError

            raise TelemetryError("max_events must be >= 1")
        self.max_events = max_events
        self._ring: deque[Event] = deque(maxlen=max_events)
        self._lock = threading.Lock()
        self._seq = 0
        self.emitted_total = 0
        self.evicted_total = 0
        self._registry = metrics
        self._m_by_kind: dict[str, object] = {}

    def emit(self, kind: str, trace_id: int | None = None, **fields: object) -> Event:
        """Record one event; cheap enough for hot paths when enabled."""
        with self._lock:
            self._seq += 1
            event = Event(
                seq=self._seq,
                ts_s=time.perf_counter(),
                kind=kind,
                trace_id=trace_id,
                fields=tuple(fields.items()),
            )
            if len(self._ring) == self.max_events:
                self.evicted_total += 1
            self._ring.append(event)
            self.emitted_total += 1
        if self._registry is not None:
            counter = self._m_by_kind.get(kind)
            if counter is None:
                counter = self._registry.counter(
                    "flight_events_total", "Flight-recorder events", kind=kind
                )
                self._m_by_kind[kind] = counter
            counter.inc()
        return event

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound (oldest-first)."""
        return self.evicted_total

    def events(
        self,
        kind: str | None = None,
        trace_id: int | None = None,
        limit: int | None = None,
    ) -> list[Event]:
        """Retained events, oldest first, optionally filtered."""
        with self._lock:
            out = list(self._ring)
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if trace_id is not None:
            out = [e for e in out if e.involves(trace_id)]
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    def rows(self) -> list[tuple]:
        """``SHOW EVENTS`` rows (:data:`EVENT_COLUMNS`), oldest first."""
        return [
            (e.seq, round(e.ts_s * 1e3, 3), e.kind, e.trace_id, e.detail)
            for e in self.events()
        ]

    def as_dicts(self, limit: int | None = None) -> list[dict]:
        """JSON-safe dicts for diagnostics bundles, oldest first."""
        return [
            {
                "seq": e.seq,
                "ts_ms": round(e.ts_s * 1e3, 3),
                "kind": e.kind,
                "trace_id": e.trace_id,
                "fields": {k: _json_safe(v) for k, v in e.fields},
            }
            for e in self.events(limit=limit)
        ]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self.emitted_total = 0
            self.evicted_total = 0


def _json_safe(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (tuple, list)):
        return [_json_safe(v) for v in value]
    return str(value)


def timeline_rows(events: list[Event], spans: list) -> list[tuple]:
    """``SHOW TIMELINE`` rows: one request's merged event/span history.

    Events and finished spans (already filtered to one trace) merge into
    a single relative-time view, followed by summary rows breaking the
    request's latency into queue vs execute vs rescue — the after-the-fact
    answer to "where did this request's time go?".
    """
    entries: list[tuple[float, str, str, str]] = []
    for event in events:
        entries.append((event.ts_s, "event", event.kind, event.detail))
    for span in spans:
        detail = f"dur_ms={span.duration_s * 1e3:.3f}"
        if span.parent_id is not None:
            detail += f" parent={span.parent_id}"
        if span.args:
            detail += " " + " ".join(f"{k}={v}" for k, v in span.args.items())
        entries.append((span.start_s, "span", span.name, detail))
    entries.sort(key=lambda e: e[0])
    if not entries:
        return []
    t0 = entries[0][0]
    rows: list[tuple] = [
        (round((ts - t0) * 1e3, 3), source, what, detail)
        for ts, source, what, detail in entries
    ]
    # Latency breakdown: prefer the resolution event's measured split.
    queue_ms = execute_ms = None
    outcome = "unresolved"
    retries = rescues = 0
    for event in events:
        if event.kind == "request.completed":
            outcome = "completed"
            queue_ms = event.get("queue_ms", queue_ms)
            execute_ms = event.get("execute_ms", execute_ms)
        elif event.kind in ("request.failed", "request.expired", "request.shed"):
            outcome = event.kind.split(".", 1)[1]
        elif event.kind == "request.retried":
            retries += 1
        elif event.kind == "stage.rescued":
            rescues += 1
    rows.append((round((events[-1].ts_s - t0) * 1e3, 3) if events else 0.0,
                 "summary", "outcome", outcome))
    if queue_ms is not None:
        rows.append((rows[-1][0], "summary", "queue_ms", str(queue_ms)))
    if execute_ms is not None:
        rows.append((rows[-1][0], "summary", "execute_ms", str(execute_ms)))
    if retries:
        rows.append((rows[-1][0], "summary", "retries", str(retries)))
    if rescues:
        rows.append((rows[-1][0], "summary", "rescues", str(rescues)))
    return rows


class NullRecorder:
    """No-op flight recorder for disabled telemetry."""

    enabled = False
    max_events = 0
    emitted_total = 0
    evicted_total = 0
    dropped = 0

    def emit(self, kind: str, trace_id: int | None = None, **fields: object) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def events(self, kind=None, trace_id=None, limit=None) -> list[Event]:
        return []

    def rows(self) -> list[tuple]:
        return []

    def as_dicts(self, limit: int | None = None) -> list[dict]:
        return []

    def clear(self) -> None:
        pass


#: Shared no-op recorder for disabled telemetry.
NULL_RECORDER = NullRecorder()
