"""Unified observability: metrics, tracing, per-query stats, logging.

One :class:`Telemetry` object bundles the two collection surfaces —

* a :class:`~repro.telemetry.registry.MetricsRegistry` of counters,
  gauges, and latency histograms with a Prometheus text exporter;
* a :class:`~repro.telemetry.tracing.Tracer` of nested spans exportable
  as Chrome-trace JSON —

behind a single on/off switch (``SystemConfig.telemetry_enabled``).
Disabled telemetry swaps in shared null objects, so instrumented hot
paths pay only a no-op method call.

A :class:`~repro.session.Database` owns one ``Telemetry``; query it from
SQL with ``SHOW METRICS`` / ``SHOW STATS``, per query via
``cursor.stats`` (:class:`~repro.telemetry.query_stats.QueryStats`), or
export spans with ``Database.export_trace(path)``.
"""

from __future__ import annotations

from .logs import ROOT_LOGGER_NAME, enable_console_logging, get_logger
from .query_stats import QueryStats
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    GLOBAL_REGISTRY,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .tracing import NULL_TRACER, NullTracer, Span, Tracer


class Telemetry:
    """One registry + one tracer behind an enabled/disabled switch."""

    def __init__(
        self,
        enabled: bool = True,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        max_spans: int = 65536,
    ):
        self.enabled = enabled
        if enabled:
            self.registry: MetricsRegistry | NullRegistry = (
                registry if registry is not None else MetricsRegistry()
            )
            self.tracer: Tracer | NullTracer = (
                tracer if tracer is not None else Tracer(max_spans=max_spans)
            )
        else:
            self.registry = NULL_REGISTRY
            self.tracer = NULL_TRACER


#: Shared disabled instance — components default to this when no
#: telemetry is supplied, keeping instrumentation cost at one no-op call.
DISABLED = Telemetry(enabled=False)

__all__ = [
    "Telemetry",
    "DISABLED",
    "MetricsRegistry",
    "NullRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "GLOBAL_REGISTRY",
    "NULL_REGISTRY",
    "Tracer",
    "NullTracer",
    "Span",
    "NULL_TRACER",
    "QueryStats",
    "get_logger",
    "enable_console_logging",
    "ROOT_LOGGER_NAME",
]
