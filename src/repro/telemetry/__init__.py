"""Unified observability: metrics, tracing, events, per-query stats, logging.

One :class:`Telemetry` object bundles the three collection surfaces —

* a :class:`~repro.telemetry.registry.MetricsRegistry` of counters,
  gauges, and latency histograms with a Prometheus text exporter;
* a :class:`~repro.telemetry.tracing.Tracer` of nested spans with
  cross-thread :class:`~repro.telemetry.tracing.TraceContext`
  propagation, exportable as Chrome-trace JSON;
* a :class:`~repro.telemetry.events.FlightRecorder` ring of structured
  lifecycle events queryable via ``SHOW EVENTS`` / ``SHOW TIMELINE`` —

behind a single on/off switch (``SystemConfig.telemetry_enabled``).
Disabled telemetry swaps in shared null objects, so instrumented hot
paths pay only a no-op method call.

A :class:`~repro.session.Database` owns one ``Telemetry``; query it from
SQL with ``SHOW METRICS`` / ``SHOW STATS`` / ``SHOW EVENTS`` /
``SHOW TIMELINE <trace_id>``, per query via ``cursor.stats``
(:class:`~repro.telemetry.query_stats.QueryStats`), export spans with
``Database.export_trace(path)``, or capture everything at once with
``Database.dump_diagnostics(path)``.
"""

from __future__ import annotations

from .audit import (
    AUDIT_COLUMNS,
    NULL_AUDITOR,
    NullAuditor,
    PlanAuditor,
    StageAudit,
)
from .events import (
    EVENT_COLUMNS,
    EVENT_KINDS,
    NULL_RECORDER,
    TIMELINE_COLUMNS,
    Event,
    FlightRecorder,
    NullRecorder,
    timeline_rows,
)
from .logs import (
    ROOT_LOGGER_NAME,
    TRACE_LOG_FORMAT,
    TraceContextFilter,
    current_trace_ids,
    enable_console_logging,
    get_logger,
    register_tracer,
)
from .profiler import (
    NULL_PROFILER,
    PROFILE_COLUMNS,
    NullStageProfiler,
    StageProfiler,
)
from .query_stats import QueryStats
from .slo import NULL_SLO, SLO_COLUMNS, NullSloTracker, SloPolicy, SloTracker
from .workload import (
    NULL_WORKLOAD,
    WORKLOAD_COLUMNS,
    NullWorkloadStore,
    WorkloadStore,
    fingerprint,
)
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    GLOBAL_REGISTRY,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .tracing import NULL_TRACER, NullTracer, Span, TraceContext, Tracer


class Telemetry:
    """One registry + tracer + flight recorder + plan auditor + workload
    intelligence (fingerprint store, SLO tracker, stage profiler) behind
    a single switch."""

    def __init__(
        self,
        enabled: bool = True,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        max_spans: int = 65536,
        max_audit_records: int = 1024,
        max_events: int = 4096,
        workload_max_fingerprints: int = 512,
        workload_regression_factor: float = 3.0,
        workload_regression_warmup: int = 8,
        workload_regression_min_ms: float = 5.0,
        page_size: int = 64 * 1024,
        slo_fast_window_s: float = 60.0,
        slo_slow_window_s: float = 3600.0,
        slo_min_samples: int = 8,
        slo_burn_threshold: float = 1.0,
        slo_latency_ms: float = 0.0,
        slo_error_budget: float = 0.01,
        profiler_interval_ms: float = 5.0,
        profiler_max_stages: int = 256,
    ):
        self.enabled = enabled
        if enabled:
            self.registry: MetricsRegistry | NullRegistry = (
                registry if registry is not None else MetricsRegistry()
            )
            self.tracer: Tracer | NullTracer = (
                tracer if tracer is not None else Tracer(max_spans=max_spans)
            )
            # Truncated Chrome traces must be self-explaining: overflow
            # drops feed a registry counter surfaced by SHOW STATS.
            self.tracer.drop_counter = self.registry.counter(
                "tracer_spans_dropped_total",
                "Finished spans dropped by the tracer ring buffer",
            )
            register_tracer(self.tracer)  # log-record trace correlation
            self.audit: PlanAuditor | NullAuditor = PlanAuditor(
                self.registry, max_records=max_audit_records
            )
            self.events: FlightRecorder | NullRecorder = FlightRecorder(
                max_events=max_events, metrics=self.registry
            )
            self.workload: WorkloadStore | NullWorkloadStore = WorkloadStore(
                max_fingerprints=workload_max_fingerprints,
                page_size=page_size,
                regression_factor=workload_regression_factor,
                regression_warmup=workload_regression_warmup,
                regression_min_ms=workload_regression_min_ms,
                metrics=self.registry,
                recorder=self.events,
            )
            self.slo: SloTracker | NullSloTracker = SloTracker(
                fast_window_s=slo_fast_window_s,
                slow_window_s=slo_slow_window_s,
                min_samples=slo_min_samples,
                burn_threshold=slo_burn_threshold,
                default_latency_ms=slo_latency_ms,
                default_error_budget=slo_error_budget,
                metrics=self.registry,
                recorder=self.events,
            )
            self.profiler: StageProfiler | NullStageProfiler = StageProfiler(
                interval_ms=profiler_interval_ms,
                max_frames=profiler_max_stages,
                metrics=self.registry,
            )
        else:
            self.registry = NULL_REGISTRY
            self.tracer = NULL_TRACER
            self.audit = NULL_AUDITOR
            self.events = NULL_RECORDER
            self.workload = NULL_WORKLOAD
            self.slo = NULL_SLO
            self.profiler = NULL_PROFILER


#: Shared disabled instance — components default to this when no
#: telemetry is supplied, keeping instrumentation cost at one no-op call.
DISABLED = Telemetry(enabled=False)

__all__ = [
    "Telemetry",
    "DISABLED",
    "PlanAuditor",
    "NullAuditor",
    "StageAudit",
    "AUDIT_COLUMNS",
    "NULL_AUDITOR",
    "MetricsRegistry",
    "NullRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "GLOBAL_REGISTRY",
    "NULL_REGISTRY",
    "Tracer",
    "NullTracer",
    "Span",
    "TraceContext",
    "NULL_TRACER",
    "Event",
    "FlightRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "EVENT_COLUMNS",
    "EVENT_KINDS",
    "TIMELINE_COLUMNS",
    "timeline_rows",
    "QueryStats",
    "get_logger",
    "enable_console_logging",
    "register_tracer",
    "current_trace_ids",
    "TraceContextFilter",
    "TRACE_LOG_FORMAT",
    "ROOT_LOGGER_NAME",
    "WorkloadStore",
    "NullWorkloadStore",
    "NULL_WORKLOAD",
    "WORKLOAD_COLUMNS",
    "fingerprint",
    "SloTracker",
    "NullSloTracker",
    "SloPolicy",
    "NULL_SLO",
    "SLO_COLUMNS",
    "StageProfiler",
    "NullStageProfiler",
    "NULL_PROFILER",
    "PROFILE_COLUMNS",
]
