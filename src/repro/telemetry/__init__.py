"""Unified observability: metrics, tracing, events, per-query stats, logging.

One :class:`Telemetry` object bundles the three collection surfaces —

* a :class:`~repro.telemetry.registry.MetricsRegistry` of counters,
  gauges, and latency histograms with a Prometheus text exporter;
* a :class:`~repro.telemetry.tracing.Tracer` of nested spans with
  cross-thread :class:`~repro.telemetry.tracing.TraceContext`
  propagation, exportable as Chrome-trace JSON;
* a :class:`~repro.telemetry.events.FlightRecorder` ring of structured
  lifecycle events queryable via ``SHOW EVENTS`` / ``SHOW TIMELINE`` —

behind a single on/off switch (``SystemConfig.telemetry_enabled``).
Disabled telemetry swaps in shared null objects, so instrumented hot
paths pay only a no-op method call.

A :class:`~repro.session.Database` owns one ``Telemetry``; query it from
SQL with ``SHOW METRICS`` / ``SHOW STATS`` / ``SHOW EVENTS`` /
``SHOW TIMELINE <trace_id>``, per query via ``cursor.stats``
(:class:`~repro.telemetry.query_stats.QueryStats`), export spans with
``Database.export_trace(path)``, or capture everything at once with
``Database.dump_diagnostics(path)``.
"""

from __future__ import annotations

from .audit import (
    AUDIT_COLUMNS,
    NULL_AUDITOR,
    NullAuditor,
    PlanAuditor,
    StageAudit,
)
from .events import (
    EVENT_COLUMNS,
    EVENT_KINDS,
    NULL_RECORDER,
    TIMELINE_COLUMNS,
    Event,
    FlightRecorder,
    NullRecorder,
    timeline_rows,
)
from .logs import ROOT_LOGGER_NAME, enable_console_logging, get_logger
from .query_stats import QueryStats
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    GLOBAL_REGISTRY,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .tracing import NULL_TRACER, NullTracer, Span, TraceContext, Tracer


class Telemetry:
    """One registry + tracer + flight recorder + plan auditor behind a switch."""

    def __init__(
        self,
        enabled: bool = True,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        max_spans: int = 65536,
        max_audit_records: int = 1024,
        max_events: int = 4096,
    ):
        self.enabled = enabled
        if enabled:
            self.registry: MetricsRegistry | NullRegistry = (
                registry if registry is not None else MetricsRegistry()
            )
            self.tracer: Tracer | NullTracer = (
                tracer if tracer is not None else Tracer(max_spans=max_spans)
            )
            # Truncated Chrome traces must be self-explaining: overflow
            # drops feed a registry counter surfaced by SHOW STATS.
            self.tracer.drop_counter = self.registry.counter(
                "tracer_spans_dropped_total",
                "Finished spans dropped by the tracer ring buffer",
            )
            self.audit: PlanAuditor | NullAuditor = PlanAuditor(
                self.registry, max_records=max_audit_records
            )
            self.events: FlightRecorder | NullRecorder = FlightRecorder(
                max_events=max_events, metrics=self.registry
            )
        else:
            self.registry = NULL_REGISTRY
            self.tracer = NULL_TRACER
            self.audit = NULL_AUDITOR
            self.events = NULL_RECORDER


#: Shared disabled instance — components default to this when no
#: telemetry is supplied, keeping instrumentation cost at one no-op call.
DISABLED = Telemetry(enabled=False)

__all__ = [
    "Telemetry",
    "DISABLED",
    "PlanAuditor",
    "NullAuditor",
    "StageAudit",
    "AUDIT_COLUMNS",
    "NULL_AUDITOR",
    "MetricsRegistry",
    "NullRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "GLOBAL_REGISTRY",
    "NULL_REGISTRY",
    "Tracer",
    "NullTracer",
    "Span",
    "TraceContext",
    "NULL_TRACER",
    "Event",
    "FlightRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "EVENT_COLUMNS",
    "EVENT_KINDS",
    "TIMELINE_COLUMNS",
    "timeline_rows",
    "QueryStats",
    "get_logger",
    "enable_console_logging",
    "ROOT_LOGGER_NAME",
]
