"""Unified observability: metrics, tracing, per-query stats, logging.

One :class:`Telemetry` object bundles the two collection surfaces —

* a :class:`~repro.telemetry.registry.MetricsRegistry` of counters,
  gauges, and latency histograms with a Prometheus text exporter;
* a :class:`~repro.telemetry.tracing.Tracer` of nested spans exportable
  as Chrome-trace JSON —

behind a single on/off switch (``SystemConfig.telemetry_enabled``).
Disabled telemetry swaps in shared null objects, so instrumented hot
paths pay only a no-op method call.

A :class:`~repro.session.Database` owns one ``Telemetry``; query it from
SQL with ``SHOW METRICS`` / ``SHOW STATS``, per query via
``cursor.stats`` (:class:`~repro.telemetry.query_stats.QueryStats`), or
export spans with ``Database.export_trace(path)``.
"""

from __future__ import annotations

from .audit import (
    AUDIT_COLUMNS,
    NULL_AUDITOR,
    NullAuditor,
    PlanAuditor,
    StageAudit,
)
from .logs import ROOT_LOGGER_NAME, enable_console_logging, get_logger
from .query_stats import QueryStats
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    GLOBAL_REGISTRY,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .tracing import NULL_TRACER, NullTracer, Span, Tracer


class Telemetry:
    """One registry + one tracer + one plan auditor behind an on/off switch."""

    def __init__(
        self,
        enabled: bool = True,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        max_spans: int = 65536,
        max_audit_records: int = 1024,
    ):
        self.enabled = enabled
        if enabled:
            self.registry: MetricsRegistry | NullRegistry = (
                registry if registry is not None else MetricsRegistry()
            )
            self.tracer: Tracer | NullTracer = (
                tracer if tracer is not None else Tracer(max_spans=max_spans)
            )
            self.audit: PlanAuditor | NullAuditor = PlanAuditor(
                self.registry, max_records=max_audit_records
            )
        else:
            self.registry = NULL_REGISTRY
            self.tracer = NULL_TRACER
            self.audit = NULL_AUDITOR


#: Shared disabled instance — components default to this when no
#: telemetry is supplied, keeping instrumentation cost at one no-op call.
DISABLED = Telemetry(enabled=False)

__all__ = [
    "Telemetry",
    "DISABLED",
    "PlanAuditor",
    "NullAuditor",
    "StageAudit",
    "AUDIT_COLUMNS",
    "NULL_AUDITOR",
    "MetricsRegistry",
    "NullRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "GLOBAL_REGISTRY",
    "NULL_REGISTRY",
    "Tracer",
    "NullTracer",
    "Span",
    "NULL_TRACER",
    "QueryStats",
    "get_logger",
    "enable_console_logging",
    "ROOT_LOGGER_NAME",
]
