"""Process-wide metrics: counters, gauges, and histograms.

The registry is the single sink for every counter the system used to keep
in per-subsystem silos (``BufferPoolStats``, ``CacheStats``, engine
``detail`` dicts).  Subsystems register metrics by name (plus optional
labels) and get the *same* metric object back on every call, so hot paths
hold a direct reference and pay one attribute access plus one float add
per event.

When telemetry is disabled the registry is replaced by
:data:`NULL_REGISTRY`, whose metrics are shared no-op singletons — the
disabled fast path costs a method call that immediately returns.

Rendering follows the Prometheus text exposition format
(``render_prometheus``), so the output can be scraped or diffed by
standard tooling; :meth:`MetricsRegistry.snapshot` gives the same data as
a flat ``{name{labels}: value}`` dict for ``SHOW METRICS``.
"""

from __future__ import annotations

import bisect
import threading
from typing import Iterator

from ..errors import TelemetryError

#: Default histogram buckets, tuned for operator/query latencies (seconds).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-5,
    1e-4,
    5e-4,
    1e-3,
    5e-3,
    1e-2,
    5e-2,
    1e-1,
    5e-1,
    1.0,
    5.0,
    10.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


class Counter:
    """A monotonically increasing counter.

    Updates are guarded by a per-metric lock: ``+=`` on a float is a
    read-modify-write, so unlocked concurrent engine runs can lose
    increments.
    """

    kind = "counter"
    __slots__ = ("name", "help", "labels", "_value", "_lock")

    def __init__(self, name: str, help: str = "", labels: LabelKey = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} can only increase (got {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def samples(self) -> Iterator[tuple[str, str, float]]:
        yield self.name + _render_labels(self.labels), self.kind, self._value


class Gauge:
    """A value that can go up and down (e.g. resident buffer-pool pages)."""

    kind = "gauge"
    __slots__ = ("name", "help", "labels", "_value", "_lock")

    def __init__(self, name: str, help: str = "", labels: LabelKey = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def samples(self) -> Iterator[tuple[str, str, float]]:
        yield self.name + _render_labels(self.labels), self.kind, self._value


class Histogram:
    """A distribution with cumulative latency buckets (Prometheus-style)."""

    kind = "histogram"
    __slots__ = (
        "name", "help", "labels", "_bounds", "_bucket_counts", "_count", "_sum", "_lock"
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: LabelKey = (),
        buckets: tuple[float, ...] | None = None,
    ):
        bounds = tuple(sorted(set(buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS)))
        if not bounds:
            raise TelemetryError(f"histogram {name!r} needs at least one bucket")
        self.name = name
        self.help = help
        self.labels = labels
        self._bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # trailing +Inf bucket
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        bucket = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._bucket_counts[bucket] += 1
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile by linear interpolation within buckets.

        Mirrors Prometheus' ``histogram_quantile``: the target rank is
        located in the cumulative bucket counts, then interpolated
        linearly between the bucket's bounds.  Observations in the +Inf
        bucket clamp to the highest finite bound (the estimate cannot
        exceed what the buckets can express).
        """
        if not 0.0 <= q <= 1.0:
            raise TelemetryError(f"quantile must be in [0, 1] (got {q})")
        with self._lock:
            counts = list(self._bucket_counts)
            total = self._count
        if total == 0:
            return 0.0
        rank = q * total
        running = 0
        for i, n in enumerate(counts):
            if running + n >= rank and n > 0:
                if i >= len(self._bounds):  # +Inf bucket: clamp
                    return self._bounds[-1]
                lower = self._bounds[i - 1] if i > 0 else 0.0
                upper = self._bounds[i]
                return lower + (upper - lower) * ((rank - running) / n)
            running += n
        return self._bounds[-1]

    def bucket_counts(self) -> dict[float, int]:
        """Cumulative counts keyed by upper bound (+Inf as ``float('inf')``)."""
        with self._lock:
            counts = list(self._bucket_counts)
        out: dict[float, int] = {}
        running = 0
        for bound, n in zip(self._bounds + (float("inf"),), counts):
            running += n
            out[bound] = running
        return out

    def reset(self) -> None:
        with self._lock:
            self._bucket_counts = [0] * (len(self._bounds) + 1)
            self._count = 0
            self._sum = 0.0

    def samples(self) -> Iterator[tuple[str, str, float]]:
        for bound, cumulative in self.bucket_counts().items():
            le = "+Inf" if bound == float("inf") else repr(bound)
            yield (
                self.name + "_bucket" + _render_labels(self.labels, (("le", le),)),
                self.kind,
                float(cumulative),
            )
        yield self.name + "_sum" + _render_labels(self.labels), self.kind, self._sum
        yield self.name + "_count" + _render_labels(self.labels), self.kind, float(self._count)


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Named metrics with get-or-create semantics.

    Asking twice for the same ``(name, labels)`` returns the same object;
    asking for an existing name with a different metric kind raises
    :class:`~repro.errors.TelemetryError` (one name maps to one kind, as
    in Prometheus).
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelKey], Metric] = {}
        self._kinds: dict[str, str] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        return iter(list(self._metrics.values()))

    def _get_or_create(
        self, cls: type, name: str, help: str, labels: dict[str, object], **kwargs: object
    ) -> Metric:
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TelemetryError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            kind = self._kinds.get(name)
            if kind is not None and kind != cls.kind:
                raise TelemetryError(
                    f"metric {name!r} already registered as {kind}, "
                    f"cannot re-register as {cls.kind}"
                )
            metric = cls(name, help, key[1], **kwargs)
            self._metrics[key] = metric
            self._kinds[name] = cls.kind
            return metric

    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        return self._get_or_create(Counter, name, help, labels)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
        **labels: object,
    ) -> Histogram:
        return self._get_or_create(  # type: ignore[return-value]
            Histogram, name, help, labels, buckets=buckets
        )

    def get(self, name: str, **labels: object) -> Metric | None:
        """The metric registered under ``(name, labels)``, or None."""
        return self._metrics.get((name, _label_key(labels)))

    def snapshot(self) -> dict[str, float]:
        """Every sample as a flat ``{rendered name: value}`` dict."""
        out: dict[str, float] = {}
        for metric in self:
            for rendered, __, value in metric.samples():
                out[rendered] = value
        return out

    def quantile_rows(
        self, quantiles: tuple[float, ...] = (0.5, 0.95, 0.99)
    ) -> list[tuple]:
        """One summary row per histogram: ``(name, count, *quantiles)``.

        Feeds the p50/p95/p99 columns of ``SHOW METRICS``; scalar metrics
        have no distribution and contribute no row here.  A histogram
        with zero observations has no quantiles at all — its columns
        render as SQL NULL (``None``), not a misleading ``0.0``.
        """
        rows: list[tuple] = []
        for metric in self:
            if isinstance(metric, Histogram):
                rendered = metric.name + _render_labels(metric.labels)
                if metric.count == 0:
                    rows.append(
                        (rendered, 0.0) + (None,) * len(quantiles)
                    )
                else:
                    rows.append(
                        (rendered, float(metric.count))
                        + tuple(round(metric.quantile(q), 9) for q in quantiles)
                    )
        return sorted(rows, key=lambda r: r[0])

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: list[str] = []
        seen_names: set[str] = set()
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            if metric.name not in seen_names:
                seen_names.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            for rendered, __, value in metric.samples():
                formatted = repr(value) if value != int(value) else str(int(value))
                lines.append(f"{rendered} {formatted}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Zero every metric (objects and identities are preserved)."""
        for metric in self:
            metric.reset()


class _NullCounter:
    """No-op stand-in used when telemetry is disabled."""

    kind = "counter"
    name = ""
    help = ""
    labels: LabelKey = ()
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def reset(self) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def bucket_counts(self) -> dict[float, int]:
        return {}

    def samples(self) -> Iterator[tuple[str, str, float]]:
        return iter(())


_NULL_METRIC = _NullCounter()


class NullRegistry:
    """A registry whose every metric is a shared no-op singleton."""

    enabled = False

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[Metric]:
        return iter(())

    def counter(self, name: str, help: str = "", **labels: object) -> _NullCounter:
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "", **labels: object) -> _NullCounter:
        return _NULL_METRIC

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
        **labels: object,
    ) -> _NullCounter:
        return _NULL_METRIC

    def get(self, name: str, **labels: object) -> None:
        return None

    def snapshot(self) -> dict[str, float]:
        return {}

    def quantile_rows(
        self, quantiles: tuple[float, ...] = (0.5, 0.95, 0.99)
    ) -> list[tuple]:
        return []

    def render_prometheus(self) -> str:
        return ""

    def reset(self) -> None:
        pass


#: Shared no-op registry for disabled telemetry.
NULL_REGISTRY = NullRegistry()

#: Process-wide default registry for library users who want one global
#: sink (each :class:`repro.Database` gets its own registry by default so
#: sessions do not pollute each other's ``SHOW METRICS``).
GLOBAL_REGISTRY = MetricsRegistry()
