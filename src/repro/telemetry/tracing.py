"""Span-based request tracing with Chrome-trace export.

A :class:`Tracer` hands out context-managed spans; entering a span while
another is open makes it a child (per thread), so one ``PREDICT`` query
produces a tree like::

    query
    ├── parse
    ├── plan
    └── execute
        └── predict:fraud
            └── stage0:udf-centric

Cross-thread requests use an explicit :class:`TraceContext`: the span
that roots a request (minted in ``Database.execute`` or
``ModelServer.submit``) exposes :meth:`Span.context`, and a worker thread
re-anchors under it with :meth:`Tracer.context` so every span it opens
shares the request's ``trace_id`` with correct parentage — the request no
longer shatters into per-thread orphans.  Spans that outlive a single
``with`` block (a request's lifecycle from submit to resolution) use
:meth:`Tracer.start_span` and finish from any thread via
:meth:`Span.finish`.

Finished spans accumulate (bounded by ``max_spans``; overflow counts into
``Tracer.dropped`` and, when wired, a ``tracer_spans_dropped_total``
metric) until exported with :meth:`Tracer.export_chrome_trace`, which
writes the Chrome trace-event JSON format — load the file at
``chrome://tracing`` or https://ui.perfetto.dev.  The export carries
``process_name``/``thread_name`` metadata records (real thread ids, so
server workers render by name in Perfetto) and flow events linking a
batch span to every member request it coalesced.

Timestamps come from ``time.perf_counter`` — durations are exact, the
epoch is arbitrary (Chrome tracing only cares about relative times).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class TraceContext:
    """A portable anchor into one request's trace.

    Carries the request's ``trace_id``, the span id new children should
    parent under, and free-form baggage (model, SLA deadline, ...).
    Immutable, so it can be handed across threads and queues freely.
    """

    trace_id: int
    span_id: int
    baggage: tuple[tuple[str, object], ...] = ()

    def get(self, key: str, default: object = None) -> object:
        for k, v in self.baggage:
            if k == key:
                return v
        return default


@dataclass
class Span:
    """One timed region of work."""

    name: str
    category: str
    span_id: int
    parent_id: int | None
    start_s: float
    end_s: float | None = None
    args: dict[str, object] = field(default_factory=dict)
    #: Every span belongs to exactly one trace; a root span's trace id is
    #: its own span id.
    trace_id: int = 0
    #: OS thread that opened the span (Chrome-trace ``tid``).
    tid: int = 0
    #: Trace ids of other requests this span links to (flow events).
    links: tuple[int, ...] = ()
    _tracer: "Tracer | None" = field(default=None, repr=False, compare=False)

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set(self, **args: object) -> None:
        """Attach extra key/value detail to the span."""
        self.args.update(args)

    def link(self, *trace_ids: int) -> None:
        """Link other traces to this span (rendered as flow events)."""
        self.links = self.links + tuple(int(t) for t in trace_ids)

    def context(self, **baggage: object) -> TraceContext:
        """A :class:`TraceContext` anchoring new work under this span."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=self.span_id,
            baggage=tuple(baggage.items()),
        )

    def finish(self, **args: object) -> None:
        """Finish a detached span (started via ``Tracer.start_span``).

        Idempotent and callable from any thread; the finishing thread is
        not recorded (the opening thread's ``tid`` stands).
        """
        if args:
            self.args.update(args)
        tracer = self._tracer
        if tracer is None or self.end_s is not None:
            return
        self.end_s = time.perf_counter()
        tracer._collect(self)


class Tracer:
    """Collects nested spans; per-thread nesting, shared finished list."""

    enabled = True

    def __init__(self, max_spans: int = 65536):
        if max_spans < 1:
            from ..errors import TelemetryError

            raise TelemetryError("max_spans must be >= 1")
        self._max_spans = max_spans
        self._finished: list[Span] = []
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._thread_names: dict[int, str] = {}
        self.dropped = 0
        #: Optional Counter mirroring ``dropped`` into the metrics
        #: registry (``tracer_spans_dropped_total``); wired by Telemetry.
        self.drop_counter = None

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(
        self,
        name: str,
        category: str,
        args: dict[str, object],
        parent: "Span | TraceContext | None",
    ) -> Span:
        tid = threading.get_ident()
        if tid not in self._thread_names:
            with self._lock:
                self._thread_names[tid] = threading.current_thread().name
        span_id = next(self._ids)
        if parent is not None:
            parent_id: int | None = parent.span_id
            trace_id = parent.trace_id
        else:
            parent_id = None
            trace_id = span_id  # a root span roots its own trace
        return Span(
            name=name,
            category=category,
            span_id=span_id,
            parent_id=parent_id,
            start_s=time.perf_counter(),
            args=args,
            trace_id=trace_id,
            tid=tid,
            _tracer=self,
        )

    def _collect(self, span: Span) -> None:
        with self._lock:
            if len(self._finished) < self._max_spans:
                self._finished.append(span)
            else:
                self.dropped += 1
                if self.drop_counter is not None:
                    self.drop_counter.inc()

    @contextmanager
    def span(self, name: str, category: str = "repro", **args: object) -> Iterator[Span]:
        stack = self._stack()
        parent = stack[-1] if stack else None
        record = self._open(name, category, dict(args), parent)
        stack.append(record)
        try:
            yield record
        finally:
            record.end_s = time.perf_counter()
            stack.pop()
            self._collect(record)

    def start_span(
        self,
        name: str,
        category: str = "repro",
        ctx: TraceContext | None = None,
        **args: object,
    ) -> Span:
        """Open a detached span that may finish on another thread.

        Not pushed on the thread-local stack; parentage comes from ``ctx``
        when given, else from the calling thread's current span.  Close it
        with :meth:`Span.finish` (or :meth:`end_span`) from any thread.
        """
        parent: Span | TraceContext | None = ctx
        if parent is None:
            stack = self._stack()
            parent = stack[-1] if stack else None
        return self._open(name, category, dict(args), parent)

    def end_span(self, span: Span, **args: object) -> None:
        """Finish a detached span (alias for :meth:`Span.finish`)."""
        span.finish(**args)

    @contextmanager
    def context(self, ctx: TraceContext | None) -> Iterator[None]:
        """Anchor this thread's new spans under a request's context.

        Pushes a lightweight anchor onto the thread-local stack: spans
        opened inside the block inherit ``ctx.trace_id`` and parent under
        ``ctx.span_id``, even though the context was minted on another
        thread.  ``ctx=None`` is a no-op (requests without tracing).
        """
        if ctx is None:
            yield None
            return
        stack = self._stack()
        stack.append(ctx)
        try:
            yield None
        finally:
            stack.pop()

    def current_context(self, **baggage: object) -> TraceContext | None:
        """The calling thread's innermost span/anchor as a context."""
        stack = self._stack()
        if not stack:
            return None
        top = stack[-1]
        if isinstance(top, TraceContext):
            if baggage:
                return TraceContext(
                    top.trace_id, top.span_id, top.baggage + tuple(baggage.items())
                )
            return top
        return top.context(**baggage)

    def current_trace_id(self) -> int | None:
        """The trace id active on the calling thread, if any."""
        stack = self._stack()
        return stack[-1].trace_id if stack else None

    @property
    def finished(self) -> list[Span]:
        """Completed spans, in completion order (children before parents)."""
        with self._lock:
            return list(self._finished)

    def spans_for(self, trace_id: int) -> list[Span]:
        """Finished spans belonging to one trace, start-ordered."""
        return sorted(
            (s for s in self.finished if s.trace_id == trace_id),
            key=lambda s: s.start_s,
        )

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self.dropped = 0

    def export_chrome_trace(self, path: str) -> int:
        """Write finished spans as Chrome trace-event JSON; returns the
        number of duration events written (metadata/flow records ride
        along for free)."""
        spans = self.finished
        with self._lock:
            thread_names = dict(self._thread_names)
        pid = os.getpid()
        events: list[dict] = []
        # Metadata records: process name once, thread names per tid seen.
        meta: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "repro"},
            }
        ]
        tids_seen = {span.tid or 1 for span in spans}
        for tid in sorted(tids_seen):
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": thread_names.get(tid, f"thread-{tid}")},
                }
            )
        roots = {s.trace_id: s for s in spans if s.span_id == s.trace_id}
        flows: list[dict] = []
        for span in spans:
            tid = span.tid or 1
            args: dict[str, object] = {"span_id": span.span_id}
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            if span.trace_id:
                args["trace_id"] = span.trace_id
            args.update(span.args)
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": span.start_s * 1e6,
                    "dur": span.duration_s * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
            # Flow events: an arrow from each linked request's root span
            # to this span (how a batch points at its member requests).
            for linked in span.links:
                source = roots.get(linked)
                if source is None:
                    continue
                flows.append(
                    {
                        "name": "request-flow",
                        "cat": "flow",
                        "ph": "s",
                        "id": f"{linked}-{span.span_id}",
                        "ts": source.start_s * 1e6,
                        "pid": pid,
                        "tid": source.tid or 1,
                    }
                )
                flows.append(
                    {
                        "name": "request-flow",
                        "cat": "flow",
                        "ph": "f",
                        "bp": "e",
                        "id": f"{linked}-{span.span_id}",
                        "ts": span.start_s * 1e6,
                        "pid": pid,
                        "tid": tid,
                    }
                )
        # Chrome tracing nests by (tid, ts, dur) containment, so events can
        # be written in any order; sort by start for readable raw JSON.
        events.sort(key=lambda e: e["ts"])
        count = len(events)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(
                {
                    "traceEvents": meta + events + flows,
                    "displayTimeUnit": "ms",
                },
                f,
                default=str,
            )
        return count


class _NullSpan:
    """Shared inert span for the disabled fast path."""

    __slots__ = ()
    name = ""
    category = ""
    span_id = 0
    parent_id = None
    start_s = 0.0
    end_s = 0.0
    duration_s = 0.0
    trace_id = 0
    tid = 0
    links: tuple[int, ...] = ()
    args: dict[str, object] = {}

    def set(self, **args: object) -> None:
        pass

    def link(self, *trace_ids: int) -> None:
        pass

    def context(self, **baggage: object) -> None:
        return None

    def finish(self, **args: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """A reusable, reentrant context manager yielding the null span."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_CTX = _NullSpanContext()


class _NullAnchorContext:
    """Reusable no-op for ``NullTracer.context``."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_ANCHOR = _NullAnchorContext()


class NullTracer:
    """No-op tracer: spans cost one method call, exports are empty."""

    enabled = False
    dropped = 0
    drop_counter = None

    @property
    def finished(self) -> list[Span]:
        return []

    def span(self, name: str, category: str = "repro", **args: object) -> _NullSpanContext:
        return _NULL_CTX

    def start_span(
        self,
        name: str,
        category: str = "repro",
        ctx: TraceContext | None = None,
        **args: object,
    ) -> _NullSpan:
        return _NULL_SPAN

    def end_span(self, span: object, **args: object) -> None:
        pass

    def context(self, ctx: TraceContext | None) -> _NullAnchorContext:
        return _NULL_ANCHOR

    def current_context(self, **baggage: object) -> None:
        return None

    def current_trace_id(self) -> None:
        return None

    def spans_for(self, trace_id: int) -> list[Span]:
        return []

    def clear(self) -> None:
        pass

    def export_chrome_trace(self, path: str) -> int:
        with open(path, "w", encoding="utf-8") as f:
            json.dump({"traceEvents": [], "displayTimeUnit": "ms"}, f)
        return 0


#: Shared no-op tracer for disabled telemetry.
NULL_TRACER = NullTracer()
