"""Span-based query tracing with Chrome-trace export.

A :class:`Tracer` hands out context-managed spans; entering a span while
another is open makes it a child (per thread), so one ``PREDICT`` query
produces a tree like::

    query
    ├── parse
    ├── plan
    └── execute
        └── predict:fraud
            └── stage0:udf-centric

Finished spans accumulate (bounded by ``max_spans``) until exported with
:meth:`Tracer.export_chrome_trace`, which writes the Chrome trace-event
JSON format — load the file at ``chrome://tracing`` or https://ui.perfetto.dev.

Timestamps come from ``time.perf_counter`` — durations are exact, the
epoch is arbitrary (Chrome tracing only cares about relative times).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Span:
    """One timed region of work."""

    name: str
    category: str
    span_id: int
    parent_id: int | None
    start_s: float
    end_s: float | None = None
    args: dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set(self, **args: object) -> None:
        """Attach extra key/value detail to the span."""
        self.args.update(args)


class Tracer:
    """Collects nested spans; per-thread nesting, shared finished list."""

    enabled = True

    def __init__(self, max_spans: int = 65536):
        if max_spans < 1:
            from ..errors import TelemetryError

            raise TelemetryError("max_spans must be >= 1")
        self._max_spans = max_spans
        self._finished: list[Span] = []
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self.dropped = 0

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, category: str = "repro", **args: object) -> Iterator[Span]:
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        record = Span(
            name=name,
            category=category,
            span_id=next(self._ids),
            parent_id=parent_id,
            start_s=time.perf_counter(),
            args=dict(args),
        )
        stack.append(record)
        try:
            yield record
        finally:
            record.end_s = time.perf_counter()
            stack.pop()
            with self._lock:
                if len(self._finished) < self._max_spans:
                    self._finished.append(record)
                else:
                    self.dropped += 1

    @property
    def finished(self) -> list[Span]:
        """Completed spans, in completion order (children before parents)."""
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self.dropped = 0

    def export_chrome_trace(self, path: str) -> int:
        """Write finished spans as Chrome trace-event JSON; returns the
        number of events written."""
        events = []
        pid = os.getpid()
        for span in self.finished:
            args = {"span_id": span.span_id}
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            args.update(span.args)
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": span.start_s * 1e6,
                    "dur": span.duration_s * 1e6,
                    "pid": pid,
                    "tid": 1,
                    "args": args,
                }
            )
        # Chrome tracing nests by (tid, ts, dur) containment, so events can
        # be written in any order; sort by start for readable raw JSON.
        events.sort(key=lambda e: e["ts"])
        with open(path, "w", encoding="utf-8") as f:
            json.dump(
                {"traceEvents": events, "displayTimeUnit": "ms"}, f, default=str
            )
        return len(events)


class _NullSpan:
    """Shared inert span for the disabled fast path."""

    __slots__ = ()
    name = ""
    category = ""
    span_id = 0
    parent_id = None
    start_s = 0.0
    end_s = 0.0
    duration_s = 0.0
    args: dict[str, object] = {}

    def set(self, **args: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """A reusable, reentrant context manager yielding the null span."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_CTX = _NullSpanContext()


class NullTracer:
    """No-op tracer: spans cost one method call, exports are empty."""

    enabled = False
    dropped = 0

    @property
    def finished(self) -> list[Span]:
        return []

    def span(self, name: str, category: str = "repro", **args: object) -> _NullSpanContext:
        return _NULL_CTX

    def clear(self) -> None:
        pass

    def export_chrome_trace(self, path: str) -> int:
        with open(path, "w", encoding="utf-8") as f:
            json.dump({"traceEvents": [], "displayTimeUnit": "ms"}, f)
        return 0


#: Shared no-op tracer for disabled telemetry.
NULL_TRACER = NullTracer()
