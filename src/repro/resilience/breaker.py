"""Deterministic circuit breakers (closed / open / half-open).

The classic pattern, tuned for replayability:

* **closed** — outcomes land in a sliding window of the most recent
  ``window`` requests.  Once the window holds ``min_samples`` outcomes
  and its failure rate reaches ``failure_threshold``, the breaker opens.
* **open** — every request is rejected without execution
  (:class:`~repro.errors.CircuitOpenError` at the call site).  Cooldown
  is *request-count based*, not wall-clock based: after
  ``cooldown_requests`` rejections the breaker moves to half-open, so a
  scenario replays identically regardless of machine speed.
* **half-open** — arrivals become the single in-flight *probe* with
  ``probe_probability``, drawn from the breaker's own seeded RNG
  (CRC32 of the breaker name mixed with the seed, same recipe as
  :mod:`repro.faults` — stable across processes).  A successful probe
  closes the breaker and clears the window; a failed probe re-opens it.

Everything is guarded by one lock per breaker; the serving front-end's
submit path and its workers record from different threads.
"""

from __future__ import annotations

import random
import threading
import zlib
from collections import deque

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Column names for breaker rows in SHOW HEALTH / SHOW SERVER surfaces.
BREAKER_COLUMNS: tuple[str, ...] = (
    "breaker",
    "state",
    "failure_rate",
    "window",
    "opened_total",
)


class CircuitBreaker:
    """One breaker: a named failure-rate gate over recent outcomes."""

    def __init__(
        self,
        name: str,
        window: int = 8,
        failure_threshold: float = 0.5,
        min_samples: int = 4,
        cooldown_requests: int = 4,
        probe_probability: float = 1.0,
        seed: int = 0,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if not 1 <= min_samples <= window:
            raise ValueError("min_samples must be in [1, window]")
        if cooldown_requests < 1:
            raise ValueError("cooldown_requests must be >= 1")
        if not 0.0 < probe_probability <= 1.0:
            raise ValueError("probe_probability must be in (0, 1]")
        self.name = name
        self.window = window
        self.failure_threshold = failure_threshold
        self.min_samples = min_samples
        self.cooldown_requests = cooldown_requests
        self.probe_probability = probe_probability
        self._rng = random.Random(
            (int(seed) * 1_000_003) ^ zlib.crc32(name.encode("utf-8"))
        )
        self._lock = threading.Lock()
        self._state = CLOSED
        self._outcomes: deque[bool] = deque(maxlen=window)  # True = failure
        self._rejections = 0  # rejections since opening
        self._probe_inflight = False
        self.opened_total = 0
        self.rejected_total = 0
        #: Optional flight recorder; state transitions are emitted as
        #: ``breaker.open`` / ``breaker.half_open`` / ``breaker.closed``.
        self.recorder = None

    def _emit(self, kind: str, **fields: object) -> None:
        if self.recorder is not None:
            self.recorder.emit(kind, breaker=self.name, **fields)

    # -- introspection ---------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def failure_rate(self) -> float:
        with self._lock:
            if not self._outcomes:
                return 0.0
            return sum(self._outcomes) / len(self._outcomes)

    def as_row(self) -> tuple:
        with self._lock:
            rate = (
                sum(self._outcomes) / len(self._outcomes)
                if self._outcomes
                else 0.0
            )
            return (
                self.name,
                self._state,
                round(rate, 4),
                len(self._outcomes),
                self.opened_total,
            )

    # -- the gate --------------------------------------------------------

    def allow(self) -> tuple[bool, str]:
        """Gate one request; returns (allowed, state at decision time).

        In the open state the call *is* the cooldown clock: each
        rejection counts toward the request-based cooldown, and the
        request that lands past it becomes eligible as the half-open
        probe.
        """
        with self._lock:
            if self._state == CLOSED:
                return True, CLOSED
            if self._state == OPEN:
                self._rejections += 1
                if self._rejections > self.cooldown_requests:
                    self._state = HALF_OPEN
                    self._probe_inflight = False
                    self._emit("breaker.half_open", rejections=self._rejections)
                else:
                    self.rejected_total += 1
                    return False, OPEN
            # half-open: at most one probe in flight; arrivals become the
            # probe by a seeded draw so the choice replays deterministically.
            if self._probe_inflight:
                self.rejected_total += 1
                return False, HALF_OPEN
            if self._rng.random() < self.probe_probability:
                self._probe_inflight = True
                return True, HALF_OPEN
            self.rejected_total += 1
            return False, HALF_OPEN

    # -- outcome feedback ------------------------------------------------

    def abandon_probe(self) -> None:
        """Release a granted probe that never executed (e.g. the probe
        request was rejected or shed downstream of the breaker), so a
        later arrival can become the probe instead."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_inflight = False

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                # The probe came back healthy: close and start fresh.
                self._state = CLOSED
                self._probe_inflight = False
                self._outcomes.clear()
                self._emit("breaker.closed", probe="success")
                return
            self._outcomes.append(False)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._state = OPEN
                self._probe_inflight = False
                self._rejections = 0
                self.opened_total += 1
                self._emit("breaker.open", probe="failure")
                return
            self._outcomes.append(True)
            if self._state == CLOSED and len(self._outcomes) >= self.min_samples:
                rate = sum(self._outcomes) / len(self._outcomes)
                if rate >= self.failure_threshold:
                    self._state = OPEN
                    self._rejections = 0
                    self.opened_total += 1
                    self._emit("breaker.open", failure_rate=round(rate, 4))


class BreakerBoard:
    """A named registry of breakers sharing one configuration."""

    def __init__(
        self,
        window: int = 8,
        failure_threshold: float = 0.5,
        min_samples: int = 4,
        cooldown_requests: int = 4,
        probe_probability: float = 1.0,
        seed: int = 0,
    ):
        self._kwargs = dict(
            window=window,
            failure_threshold=failure_threshold,
            min_samples=min_samples,
            cooldown_requests=cooldown_requests,
            probe_probability=probe_probability,
            seed=seed,
        )
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}
        #: Optional flight recorder propagated to breakers at creation.
        self.recorder = None

    @classmethod
    def from_config(cls, config, seed: int | None = None) -> "BreakerBoard":
        """A board configured from ``breaker_*`` SystemConfig knobs."""
        return cls(
            window=config.breaker_window,
            failure_threshold=config.breaker_failure_threshold,
            min_samples=config.breaker_min_samples,
            cooldown_requests=config.breaker_cooldown_requests,
            probe_probability=config.breaker_probe_probability,
            seed=seed if seed is not None else (config.faults_seed or config.seed),
        )

    def get(self, name: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = CircuitBreaker(name, **self._kwargs)
                breaker.recorder = self.recorder
                self._breakers[name] = breaker
            return breaker

    def peek(self, name: str) -> CircuitBreaker | None:
        """The breaker if it exists; never creates one."""
        with self._lock:
            return self._breakers.get(name)

    def __iter__(self):
        with self._lock:
            return iter(sorted(self._breakers.values(), key=lambda b: b.name))

    def __len__(self) -> int:
        return len(self._breakers)

    def rows(self) -> list[tuple]:
        """One :data:`BREAKER_COLUMNS` row per breaker, sorted by name."""
        return [breaker.as_row() for breaker in self]

    def worst_state(self) -> str:
        """closed < half-open < open across every breaker on the board."""
        rank = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}
        worst = CLOSED
        for breaker in self:
            if rank[breaker.state] > rank[worst]:
                worst = breaker.state
        return worst
