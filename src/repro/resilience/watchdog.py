"""Cooperative wall-clock deadlines for plan stages.

A :class:`Deadline` is handed down from the hybrid executor into the
engines, which call :meth:`Deadline.check` at natural safepoints — before
each layer of a fused UDF stage, before each stripe of a relation-centric
stage, before dispatching a DL-centric offload.  An overrun raises
:class:`~repro.errors.StageTimeoutError` *from the worker's own thread*;
nothing is ever killed from outside, so budgets and locks unwind through
the ordinary ``try/finally`` paths and the executor's recovery machinery
can retry the stage re-lowered.
"""

from __future__ import annotations

import time

from ..errors import StageTimeoutError


class Deadline:
    """A start-anchored wall-clock budget with an explicit check point."""

    __slots__ = ("label", "limit_seconds", "_start", "_clock")

    def __init__(self, limit_seconds: float, label: str = "stage", clock=time.monotonic):
        self.label = label
        self.limit_seconds = float(limit_seconds)
        self._clock = clock
        self._start = clock()

    @classmethod
    def for_stage(cls, config, label: str) -> "Deadline | None":
        """A deadline from ``resilience_stage_timeout_ms`` (None when 0)."""
        timeout_ms = getattr(config, "resilience_stage_timeout_ms", 0.0)
        if not timeout_ms:
            return None
        return cls(timeout_ms / 1e3, label=label)

    @property
    def elapsed(self) -> float:
        return self._clock() - self._start

    @property
    def remaining(self) -> float:
        return self.limit_seconds - self.elapsed

    @property
    def expired(self) -> bool:
        return self.remaining < 0

    def check(self) -> None:
        """Raise :class:`StageTimeoutError` once the budget is spent."""
        elapsed = self.elapsed
        if elapsed > self.limit_seconds:
            raise StageTimeoutError(self.label, elapsed, self.limit_seconds)

    def checkpoint(self):
        """The bound check as a callable, for APIs taking a hook."""
        return self.check
