"""Runtime resilience: recovery, circuit breakers, cooperative deadlines.

The paper's optimizer routes every operator by a *memory estimate*; the
plan-quality audit layer measures how often that estimate is wrong.  This
package is what happens next: instead of letting a mispredicted stage
kill the query with :class:`~repro.errors.OutOfMemoryError` (the OOM
cells of Table 3), the hybrid executor degrades it to the bounded
relation-centric path or splits the batch, a :class:`RecoveryLedger`
feeds the rescue back into the optimizer so the next plan is right
up-front, and :class:`CircuitBreaker`\\ s let the serving front-end shed
a poisoned model fast instead of burning worker time.

* :mod:`repro.resilience.recovery` — the per-(model, operator) rescue
  ledger the adaptive optimizer consults.
* :mod:`repro.resilience.breaker` — deterministic closed/open/half-open
  breakers with a sliding failure-rate window and seeded probe selection.
* :mod:`repro.resilience.watchdog` — cooperative wall-clock deadlines
  checked at layer/stripe/stage boundaries (no thread kills).
"""

from __future__ import annotations

from .breaker import BreakerBoard, CircuitBreaker
from .recovery import RecoveryLedger
from .watchdog import Deadline

__all__ = [
    "BreakerBoard",
    "CircuitBreaker",
    "Deadline",
    "RecoveryLedger",
]
