"""The recovery ledger: runtime rescues fed back into the optimizer.

When the hybrid executor rescues a stage (re-lowers it to
relation-centric after an OOM or deadline overrun), the rescue is
recorded here per ``(model, lowered-operator index)``.  The rule-based
optimizer consults the ledger in its assignment pass: an operator rescued
at least ``threshold`` times is lowered to relation-centric *up-front*,
so the next query pays the bounded path's cost directly instead of
failing first — closing the paper's estimate → audit → plan loop at
runtime.

Plans are compiled ahead of time (:mod:`repro.core.compiler`), so the
ledger also tracks a per-model **generation** counter.  Each
:class:`~repro.core.compiler.CompiledModel` is stamped with the
generation it was compiled under; when the session selects a plan for a
model whose generation has advanced, it recompiles — the cheap,
cache-friendly way to make rescues visible without re-planning every
query.
"""

from __future__ import annotations

import threading

#: Columns for the ledger section of health/stats surfaces.
LEDGER_COLUMNS: tuple[str, ...] = ("model", "node", "op", "rescues", "lowered")


class RecoveryLedger:
    """Thread-safe rescue counts per (model name, lowered node index)."""

    def __init__(self, threshold: int = 1):
        if threshold < 1:
            raise ValueError("ledger threshold must be >= 1")
        self.threshold = threshold
        self._lock = threading.Lock()
        # (model, node index) -> rescue count
        self._rescues: dict[tuple[str, int], int] = {}
        # model -> generation (bumped when any of its entries change)
        self._generations: dict[str, int] = {}
        # (model, node index) -> op name, for the health/stats rows
        self._ops: dict[tuple[str, int], str] = {}

    def note_rescue(self, model: str, node_index: int, op: str = "") -> int:
        """Record one rescue of a lowered operator; returns its new count."""
        key = (model.lower(), int(node_index))
        with self._lock:
            count = self._rescues.get(key, 0) + 1
            self._rescues[key] = count
            if op:
                self._ops[key] = op
            self._generations[key[0]] = self._generations.get(key[0], 0) + 1
        return count

    def rescue_count(self, model: str, node_index: int) -> int:
        """Rescues recorded for one lowered operator."""
        with self._lock:
            return self._rescues.get((model.lower(), int(node_index)), 0)

    def should_lower(self, model: str, node_index: int) -> bool:
        """True when this operator has been rescued past the threshold."""
        with self._lock:
            return (
                self._rescues.get((model.lower(), int(node_index)), 0)
                >= self.threshold
            )

    def generation(self, model: str) -> int:
        """Monotone per-model counter; advances on every recorded rescue."""
        with self._lock:
            return self._generations.get(model.lower(), 0)

    def rescues(self, model: str | None = None) -> int:
        """Total rescues recorded (optionally for one model)."""
        with self._lock:
            if model is None:
                return sum(self._rescues.values())
            name = model.lower()
            return sum(
                count for (m, _), count in self._rescues.items() if m == name
            )

    def __len__(self) -> int:
        return len(self._rescues)

    def rows(self) -> list[tuple]:
        """(model, node, op, rescues, lowered) rows, stable order."""
        with self._lock:
            return [
                (
                    model,
                    node,
                    self._ops.get((model, node), "?"),
                    count,
                    count >= self.threshold,
                )
                for (model, node), count in sorted(self._rescues.items())
            ]

    def clear(self) -> None:
        with self._lock:
            self._rescues.clear()
            self._ops.clear()
            # Generations keep advancing so stamped plans still recompile.
            for model in self._generations:
                self._generations[model] += 1
