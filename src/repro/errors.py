"""Exception hierarchy for the repro system.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch one type to handle any library failure.  The most important
subclass is :class:`OutOfMemoryError`: the paper's Table 3 hinges on
whole-tensor execution engines running out of memory where block-wise
relation-centric execution survives, and we reproduce that behaviour with
deterministic memory accounting rather than by exhausting the host.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid system configuration value was supplied."""


class OutOfMemoryError(ReproError):
    """A memory budget was exceeded.

    Raised by :class:`repro.dlruntime.memory.MemoryBudget` when an engine
    tries to allocate past its limit.  This mirrors the OOM cells of the
    paper's Table 3: the DL-centric and UDF-centric engines materialise
    whole tensors and therefore hit this error for large operators, while
    the relation-centric engine works block-at-a-time under the buffer
    pool and does not.
    """

    def __init__(self, requested: int, used: int, limit: int, tag: str = ""):
        self.requested = requested
        self.used = used
        self.limit = limit
        self.tag = tag
        detail = f" while allocating {tag!r}" if tag else ""
        super().__init__(
            f"out of memory{detail}: requested {requested} bytes with "
            f"{used}/{limit} bytes already in use"
        )


class StageTimeoutError(ReproError):
    """A plan stage overran its cooperative wall-clock deadline.

    Raised by the executor's watchdog (:mod:`repro.resilience.watchdog`)
    at a block/stage boundary check — never by killing a thread.  The
    hybrid executor treats it exactly like :class:`OutOfMemoryError`:
    the stage's charges are rolled back and the stage is retried
    re-lowered to the bounded relation-centric path.
    """

    def __init__(self, label: str, elapsed_seconds: float, limit_seconds: float):
        self.label = label
        self.elapsed_seconds = elapsed_seconds
        self.limit_seconds = limit_seconds
        super().__init__(
            f"stage {label!r} exceeded its {limit_seconds * 1e3:.1f}ms "
            f"deadline ({elapsed_seconds * 1e3:.1f}ms elapsed)"
        )


class StorageError(ReproError):
    """A page, heap-file, or disk-manager invariant was violated."""


class BufferPoolError(StorageError):
    """The buffer pool could not satisfy a request (e.g. all pages pinned)."""


class CorruptPageError(StorageError):
    """A page failed its checksum on read (torn write, bit rot, or a
    truncated page file).

    Raised by :class:`repro.storage.disk.FileDiskManager`, whose on-disk
    slots carry a magic header and a CRC32 over the payload.  Corruption
    is permanent damage, not a transient fault: callers must not retry
    (``transient`` is deliberately absent), and recovery means restoring
    from a backup generation or rebuilding the relation.
    """

    def __init__(self, message: str, page_id: int | None = None, path: str = ""):
        self.page_id = page_id
        self.path = path
        super().__init__(message)


class CatalogError(ReproError):
    """A table, model, or index name could not be resolved or is duplicated."""


class SchemaError(ReproError):
    """A schema is malformed or two schemas are incompatible."""


class SqlError(ReproError):
    """Base class for errors raised by the SQL front end."""


class SqlLexError(SqlError):
    """The SQL text contains a character sequence that cannot be tokenized."""


class SqlParseError(SqlError):
    """The SQL token stream does not match the grammar."""


class BindError(SqlError):
    """A name or type in the query could not be resolved against the catalog."""


class PlanError(ReproError):
    """A logical plan could not be converted into an executable physical plan."""


class ExecutionError(ReproError):
    """A physical operator failed at runtime."""


class ModelError(ReproError):
    """A model definition, serialization, or forward pass is invalid."""


class ShapeError(ModelError):
    """Tensor shapes are incompatible for the requested operation."""


class AnnIndexError(ReproError):
    """A vector index was used incorrectly (e.g. searched before training)."""


class SlaViolationError(ReproError):
    """No execution alternative satisfies the requested service level agreement."""


class DeploymentError(ReproError):
    """A model deployment operation was invalid (e.g. deploying over an
    in-flight deployment, or rolling back a model with nothing deployed)."""


class NoServableVersionError(DeploymentError):
    """Versions of the model exist, but none is in a servable state.

    Raised instead of a generic error so the caller can see exactly which
    versions were considered and why each was skipped.  Carries the model
    name and ``candidates``: ``(version, state)`` pairs for every version
    that was inspected.
    """

    def __init__(
        self,
        model: str,
        candidates: list[tuple[str, str]],
        requested: str | None = None,
    ):
        self.model = model
        self.candidates = list(candidates)
        self.requested = requested
        listing = (
            ", ".join(f"{v} ({s})" for v, s in self.candidates)
            if self.candidates
            else "none registered"
        )
        wanted = f" (requested {requested!r})" if requested else ""
        super().__init__(
            f"no servable version of model {model!r}{wanted}: "
            f"candidates are {listing}"
        )


class TelemetryError(ReproError):
    """A metric or trace was used inconsistently (e.g. a counter re-registered
    as a gauge, or a counter decremented)."""


class ServerError(ReproError):
    """Base class for errors raised by the concurrent serving front-end."""


class ServerOverloadedError(ServerError):
    """Admission control rejected a request because a queue is full.

    Backpressure: the caller should retry later or slow down.  Carries the
    model and the queue depth at rejection time.
    """

    def __init__(self, model: str, queue_depth: int, capacity: int):
        self.model = model
        self.queue_depth = queue_depth
        self.capacity = capacity
        super().__init__(
            f"server overloaded: model {model!r} queue holds {queue_depth} "
            f"requests (capacity {capacity})"
        )


class DeadlineExceededError(ServerError):
    """A request's deadline passed (or provably cannot be met) before
    execution, so the server shed it instead of wasting engine time."""


class ServerClosedError(ServerError):
    """The serving front-end was closed; no new requests are accepted."""


class CircuitOpenError(ServerError):
    """A circuit breaker rejected the request without executing it.

    Raised synchronously by :meth:`repro.server.ModelServer.submit` while
    the target model's breaker is open (or half-open with a probe already
    in flight): a model failing past the breaker's rate threshold sheds
    instantly instead of burning worker and engine time on work that will
    fail anyway.  Carries the breaker ``state`` at rejection time so
    clients can distinguish open (back off) from half-open (retry soon).
    """

    def __init__(self, model: str, state: str, detail: str = ""):
        self.model = model
        self.state = state
        message = f"circuit breaker for model {model!r} is {state}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class ClusterError(ReproError):
    """Base class for errors raised by the process-parallel serving tier
    (:mod:`repro.cluster`)."""


class WorkerCrashedError(ClusterError):
    """A cluster worker process died (or wedged past its heartbeat
    timeout) while holding this request.

    Marked ``transient`` because the pool reroutes to a replica and the
    serving front-end's retry loop may safely re-run the batch: the
    failed attempt never produced a partial side effect (inference is
    read-only).
    """

    transient = True

    def __init__(self, worker_id: int, model: str, detail: str = ""):
        self.worker_id = worker_id
        self.model = model
        message = (
            f"cluster worker {worker_id} crashed while serving "
            f"model {model!r}"
        )
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class WorkerLoadError(ClusterError):
    """A worker failed to load (unpickle or register) a placed model.

    Deliberately *not* transient: a load failure is deterministic — the
    same bytes would fail on every replica and every respawn — so the
    pool records it, stops placing the model, and fails requests for it
    fast with the real underlying error (``__cause__`` carries the
    worker-side exception when it could be pickled back).
    """

    def __init__(self, worker_id: int, model: str, cause: BaseException):
        self.worker_id = worker_id
        self.model = model
        self.__cause__ = cause
        super().__init__(
            f"cluster worker {worker_id} failed to load model {model!r}: "
            f"{type(cause).__name__}: {cause}"
        )


class ClusterUnavailableError(ClusterError):
    """No live replica could serve the request within the cluster
    request timeout (all placed workers crashed faster than they could
    respawn)."""


class WorkerExecutionError(ClusterError):
    """A worker's engine raised an error that could not be pickled back
    verbatim; carries the remote error's type name and message."""

    def __init__(self, error_type: str, message: str):
        self.error_type = error_type
        super().__init__(f"worker-side {error_type}: {message}")


class InjectedFaultError(ReproError):
    """A fault deliberately raised by :mod:`repro.faults`.

    Carries the injection ``site``, a ``transient`` flag (the server's
    retry loop only retries transient faults — see
    :func:`repro.faults.is_transient`), and the site's call ``context``
    (page id, model, stage index, ...) for test assertions.
    """

    def __init__(
        self,
        site: str,
        transient: bool = True,
        message: str = "",
        context: dict | None = None,
    ):
        self.site = site
        self.transient = bool(transient)
        self.context = dict(context or {})
        detail = message or f"injected fault at {site}"
        if self.context:
            rendered = ", ".join(f"{k}={v!r}" for k, v in self.context.items())
            detail = f"{detail} ({rendered})"
        super().__init__(detail)
