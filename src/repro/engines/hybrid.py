"""The hybrid executor: runs the adaptive optimizer's mixed plans.

An :class:`~repro.core.ir.InferencePlan` is a sequence of stages, each
pinned to a representation.  The hybrid executor walks the stages,
dispatching each to its engine and handing the activations across stage
boundaries.  Crossing into or out of a DL-centric stage charges the
modeled connector wire time for the boundary tensors — the cross-system
overhead the paper's unified architecture exists to avoid.
"""

from __future__ import annotations

import threading

import numpy as np

from ..config import SystemConfig
from ..core.ir import InferencePlan, LinAlgOp, PlanStage, Representation
from ..dlruntime.connector import Connector
from ..dlruntime.layers import Conv2d, Model, ReLU
from ..dlruntime.memory import MemoryBudget
from ..dlruntime.runtime import ExternalRuntime
from ..errors import PlanError
from ..faults import NULL_INJECTOR, FaultInjector
from ..storage.catalog import Catalog, ModelInfo
from ..telemetry import DISABLED, Telemetry
from .base import EngineResult
from .dl_centric import DlCentricEngine
from .relation_centric import RelationCentricEngine
from .udf_centric import UdfCentricEngine


class HybridExecutor:
    """Executes mixed-representation plans over in-database data."""

    def __init__(
        self,
        catalog: Catalog,
        config: SystemConfig,
        db_budget: MemoryBudget | None = None,
        dl_budget: MemoryBudget | None = None,
        runtime_flavor: str = "tensorflow-sim",
        telemetry: Telemetry | None = None,
        injector: FaultInjector | None = None,
    ):
        self.catalog = catalog
        self.config = config
        self.telemetry = telemetry if telemetry is not None else DISABLED
        self.injector = injector if injector is not None else NULL_INJECTOR
        registry = self.telemetry.registry
        self._m_stage_runs = {
            rep: registry.counter(
                "engine_stage_runs_total",
                "Plan stages executed, by representation",
                representation=rep.value,
            )
            for rep in Representation
        }
        self._m_engine_seconds = registry.counter(
            "engine_measured_seconds_total", "Wall-clock seconds inside engines"
        )
        self._m_predict_batches = registry.counter(
            "predict_batches_total", "Inference plan executions"
        )
        self._m_predict_rows = registry.counter(
            "predict_rows_total", "Rows pushed through inference plans"
        )
        self.db_budget = (
            db_budget
            if db_budget is not None
            else MemoryBudget(config.dl_memory_limit_bytes, "db")
        )
        self.dl_budget = (
            dl_budget
            if dl_budget is not None
            else MemoryBudget(config.dl_memory_limit_bytes, "dl-runtime")
        )
        self.udf_engine = UdfCentricEngine(
            self.db_budget, eager_free=False, telemetry=self.telemetry
        )
        self.relation_engine = RelationCentricEngine(
            catalog, config, telemetry=self.telemetry
        )
        # Relation-centric stages materialise scratch block tables in the
        # shared catalog; serialize them across the serving front-end's
        # workers rather than making the whole engine re-entrant.
        self._relation_lock = threading.Lock()
        self.dl_engine = DlCentricEngine(
            Connector(config.connector),
            ExternalRuntime(
                runtime_flavor,
                self.dl_budget,
                compute_efficiency=config.framework_compute_efficiency,
            ),
            telemetry=self.telemetry,
        )

    def execute(
        self,
        plan: InferencePlan,
        x: np.ndarray,
        model_info: ModelInfo,
    ) -> EngineResult:
        """Run a plan over an input array; returns combined accounting."""
        current = np.asarray(x, dtype=np.float64)
        measured = 0.0
        modeled_extra = 0.0
        peak = 0
        detail: dict[str, float] = {}
        outputs = current
        tracer = self.telemetry.tracer
        with tracer.span(
            f"predict:{plan.model.name}",
            category="engine",
            rows=int(current.shape[0]),
            stages=len(plan.stages),
        ):
            for i, stage in enumerate(plan.stages):
                with tracer.span(
                    f"stage{i}:{stage.representation.value}", category="engine"
                ) as stage_span:
                    # Fires before the stage touches shared state, so an
                    # injected error aborts the whole predict cleanly and
                    # a retry re-runs the plan from the original input.
                    self.injector.fire(
                        "engine.stage",
                        model=plan.model.name,
                        stage=i,
                        representation=stage.representation.value,
                    )
                    result = self._run_stage(stage, current, model_info, plan.model)
                    stage_span.set(
                        engine=result.engine,
                        measured_seconds=result.measured_seconds,
                    )
                self._m_stage_runs[stage.representation].inc()
                # Close the optimizer's loop: pair the estimate that routed
                # this stage with the peak the engine actually reached.
                self.telemetry.audit.record_stage(
                    model=plan.model.name,
                    stage_index=i,
                    representation=stage.representation.value,
                    ops=stage.ops,
                    rows=int(current.shape[0]),
                    elapsed_seconds=result.measured_seconds,
                    estimated_bytes=stage.estimated_bytes,
                    actual_peak_bytes=result.peak_memory_bytes,
                    threshold_bytes=plan.threshold_bytes,
                )
                measured += result.measured_seconds
                modeled_extra += result.modeled_extra_seconds
                peak = max(peak, result.peak_memory_bytes)
                for key, value in result.detail.items():
                    detail[f"stage{i}.{key}"] = value
                detail[f"stage{i}.representation"] = float(
                    list(Representation).index(stage.representation)
                )
                outputs = result.outputs
                current = outputs
        self._m_predict_batches.inc()
        self._m_predict_rows.inc(float(x.shape[0]))
        self._m_engine_seconds.inc(measured)
        return EngineResult(
            outputs=outputs,
            engine="hybrid",
            measured_seconds=measured,
            modeled_extra_seconds=modeled_extra,
            peak_memory_bytes=peak,
            detail=detail,
        )

    def _run_stage(
        self,
        stage: PlanStage,
        x: np.ndarray,
        model_info: ModelInfo,
        model: Model,
    ) -> EngineResult:
        if stage.representation is Representation.UDF_CENTRIC:
            return self.udf_engine.run_layers(stage.layers, x)
        if stage.representation is Representation.RELATION_CENTRIC:
            with self._relation_lock:
                return self._run_relation_stage(stage, x, model_info)
        if stage.representation is Representation.DL_CENTRIC:
            return self._run_dl_stage(stage, x)
        raise PlanError(f"stage has no representation assigned: {stage.describe()}")

    def _run_relation_stage(
        self, stage: PlanStage, x: np.ndarray, model_info: ModelInfo
    ) -> EngineResult:
        first_op = stage.nodes[0].op
        if first_op is LinAlgOp.CONV2D:
            conv = stage.nodes[0].layer
            assert isinstance(conv, Conv2d)
            apply_relu = len(stage.nodes) > 1 and isinstance(
                stage.nodes[1].layer, ReLU
            )
            if len(stage.nodes) > (2 if apply_relu else 1):
                raise PlanError(
                    "relation-centric conv stages support conv [+ relu] only"
                )
            return self.relation_engine.run_conv_stage(
                conv, x, model_info, apply_relu=apply_relu
            )
        return self.relation_engine.run_vector_stage(stage.layers, x, model_info)

    def _run_dl_stage(self, stage: PlanStage, x: np.ndarray) -> EngineResult:
        """Offload a stage: pay modeled wire cost both ways, then run."""
        stage_model = Model("offload", stage.layers, input_shape=tuple(x.shape[1:]))
        result = self.dl_engine.run_on_array(stage_model, x)
        boundary_bytes = x.nbytes + result.outputs.nbytes
        wire = self.config.connector.wire_time(boundary_bytes, x.shape[0])
        result.modeled_extra_seconds += wire
        result.detail["boundary_wire_s"] = wire
        return result
