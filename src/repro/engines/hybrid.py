"""The hybrid executor: runs the adaptive optimizer's mixed plans.

An :class:`~repro.core.ir.InferencePlan` is a sequence of stages, each
pinned to a representation.  The hybrid executor walks the stages,
dispatching each to its engine and handing the activations across stage
boundaries.  Crossing into or out of a DL-centric stage charges the
modeled connector wire time for the boundary tensors — the cross-system
overhead the paper's unified architecture exists to avoid.

Runtime resilience
------------------

Whole-tensor stages (UDF- and DL-centric) can fail at runtime even when
the optimizer's estimate said they would fit: the estimate can be wrong,
the budget can shrink between planning and execution, or a stage can
blow its cooperative deadline.  Rather than failing the query, the
executor *recovers*:

* a stage whose operators are all expressible as relational vector
  pipelines (MATMUL / RELU / SIGMOID / SOFTMAX) is **re-lowered** and
  re-run through the relation-centric engine, whose stripe-at-a-time
  peak is bounded regardless of operator size;
* any other whole-tensor stage that OOMs is retried with the **batch
  split in halves**, recursively, down to
  ``resilience_split_floor_rows`` — per-sample operators make this safe
  along the batch dimension;
* each rescue is reported to the :class:`~repro.resilience.RecoveryLedger`
  so the optimizer lowers the stage up-front next time instead of paying
  for the failed attempt again;
* per-engine circuit breakers trip after repeated failures, after which
  relowerable stages are **preemptively** routed to the relation engine
  until a half-open probe succeeds.

Recovery is bounded by ``resilience_max_recoveries_per_query``; once the
budget is spent the original error propagates and the stage is audited
as ``gave-up``.  Recovery runs never carry a deadline — a rescue exists
to finish the work, slowly but surely.
"""

from __future__ import annotations

import threading

import numpy as np

from ..config import SystemConfig
from ..core.ir import (
    VECTOR_SAFE_OPS,
    InferencePlan,
    LinAlgOp,
    PlanStage,
    Representation,
)
from ..dlruntime.connector import Connector
from ..dlruntime.layers import Conv2d, Model, ReLU
from ..dlruntime.memory import MemoryBudget, OutOfMemoryError
from ..dlruntime.runtime import ExternalRuntime
from ..errors import PlanError, StageTimeoutError
from ..faults import NULL_INJECTOR, FaultInjector
from ..resilience import BreakerBoard, Deadline, RecoveryLedger
from ..storage.catalog import Catalog, ModelInfo
from ..telemetry import DISABLED, Telemetry
from .base import EngineResult
from .dl_centric import DlCentricEngine
from .relation_centric import RelationCentricEngine
from .udf_centric import UdfCentricEngine

#: Errors the executor treats as recoverable stage failures.
RECOVERABLE = (OutOfMemoryError, StageTimeoutError)


class HybridExecutor:
    """Executes mixed-representation plans over in-database data."""

    def __init__(
        self,
        catalog: Catalog,
        config: SystemConfig,
        db_budget: MemoryBudget | None = None,
        dl_budget: MemoryBudget | None = None,
        runtime_flavor: str = "tensorflow-sim",
        telemetry: Telemetry | None = None,
        injector: FaultInjector | None = None,
        ledger: RecoveryLedger | None = None,
    ):
        self.catalog = catalog
        self.config = config
        self.telemetry = telemetry if telemetry is not None else DISABLED
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.ledger = ledger
        self.breakers = (
            BreakerBoard.from_config(config) if config.breaker_enabled else None
        )
        if self.breakers is not None:
            self.breakers.recorder = self.telemetry.events
        registry = self.telemetry.registry
        self._m_stage_runs = {
            rep: registry.counter(
                "engine_stage_runs_total",
                "Plan stages executed, by representation",
                representation=rep.value,
            )
            for rep in Representation
        }
        self._m_engine_seconds = registry.counter(
            "engine_measured_seconds_total", "Wall-clock seconds inside engines"
        )
        self._m_predict_batches = registry.counter(
            "predict_batches_total", "Inference plan executions"
        )
        self._m_predict_rows = registry.counter(
            "predict_rows_total", "Rows pushed through inference plans"
        )
        self._m_recoveries = {
            outcome: registry.counter(
                "engine_recoveries_total",
                "Stage rescues by the runtime resilience layer",
                outcome=outcome,
            )
            for outcome in ("relowered", "split", "preemptive", "gave-up")
        }
        self.db_budget = (
            db_budget
            if db_budget is not None
            else MemoryBudget(config.dl_memory_limit_bytes, "db")
        )
        self.dl_budget = (
            dl_budget
            if dl_budget is not None
            else MemoryBudget(config.dl_memory_limit_bytes, "dl-runtime")
        )
        self.udf_engine = UdfCentricEngine(
            self.db_budget, eager_free=False, telemetry=self.telemetry
        )
        self.relation_engine = RelationCentricEngine(
            catalog, config, telemetry=self.telemetry
        )
        # Relation-centric stages materialise scratch block tables in the
        # shared catalog; serialize them across the serving front-end's
        # workers rather than making the whole engine re-entrant.
        self._relation_lock = threading.Lock()
        self.dl_engine = DlCentricEngine(
            Connector(config.connector),
            ExternalRuntime(
                runtime_flavor,
                self.dl_budget,
                compute_efficiency=config.framework_compute_efficiency,
            ),
            telemetry=self.telemetry,
        )

    def execute(
        self,
        plan: InferencePlan,
        x: np.ndarray,
        model_info: ModelInfo,
    ) -> EngineResult:
        """Run a plan over an input array; returns combined accounting."""
        current = np.asarray(x, dtype=np.float64)
        measured = 0.0
        modeled_extra = 0.0
        peak = 0
        detail: dict[str, float] = {}
        outputs = current
        tracer = self.telemetry.tracer
        profiler = self.telemetry.profiler
        # Forced plans are the paper's fixed-architecture baselines: a
        # forced whole-tensor plan that OOMs is the measurement (the OOM
        # cells of Table 3), so rescue only adaptive plans.
        recoveries_left = (
            self.config.resilience_max_recoveries_per_query
            if self.config.resilience_enabled and plan.forced is None
            else 0
        )
        node_base = 0
        with tracer.span(
            f"predict:{plan.model.name}",
            category="engine",
            rows=int(current.shape[0]),
            stages=len(plan.stages),
        ):
            for i, stage in enumerate(plan.stages):
                with tracer.span(
                    f"stage{i}:{stage.representation.value}", category="engine"
                ) as stage_span:
                    # Fires before the stage touches shared state, so an
                    # injected error aborts the whole predict cleanly and
                    # a retry re-runs the plan from the original input.
                    self.injector.fire(
                        "engine.stage",
                        model=plan.model.name,
                        stage=i,
                        representation=stage.representation.value,
                    )
                    # Mark this worker thread's current stage for the
                    # sampling profiler (near-free while it is stopped).
                    profiler.enter(
                        f"{plan.model.name};stage{i}:"
                        f"{stage.representation.value}"
                    )
                    try:
                        result, recovery, recoveries_left = self._run_stage_guarded(
                            stage,
                            current,
                            model_info,
                            plan,
                            stage_index=i,
                            node_base=node_base,
                            recoveries_left=recoveries_left,
                        )
                    except RECOVERABLE as exc:
                        # Recovery budget spent (or disabled): audit the
                        # stage as gave-up, then let the error propagate.
                        self._m_recoveries["gave-up"].inc()
                        self.telemetry.events.emit(
                            "stage.gave_up",
                            trace_id=tracer.current_trace_id(),
                            model=plan.model.name,
                            stage=i,
                            representation=stage.representation.value,
                            error=type(exc).__name__,
                        )
                        self.telemetry.audit.record_stage(
                            model=plan.model.name,
                            stage_index=i,
                            representation=stage.representation.value,
                            ops=stage.ops,
                            rows=int(current.shape[0]),
                            elapsed_seconds=0.0,
                            estimated_bytes=stage.estimated_bytes,
                            actual_peak_bytes=self._stage_peak(stage),
                            threshold_bytes=plan.threshold_bytes,
                            recovery="gave-up",
                        )
                        raise
                    finally:
                        profiler.exit()
                    stage_span.set(
                        engine=result.engine,
                        measured_seconds=result.measured_seconds,
                    )
                    if recovery:
                        stage_span.set(recovery=recovery)
                        self.telemetry.events.emit(
                            "stage.rescued",
                            trace_id=tracer.current_trace_id(),
                            model=plan.model.name,
                            stage=i,
                            representation=stage.representation.value,
                            recovery=recovery,
                        )
                self._m_stage_runs[stage.representation].inc()
                # Close the optimizer's loop: pair the estimate that routed
                # this stage with the peak the engine actually reached.
                self.telemetry.audit.record_stage(
                    model=plan.model.name,
                    stage_index=i,
                    representation=stage.representation.value,
                    ops=stage.ops,
                    rows=int(current.shape[0]),
                    elapsed_seconds=result.measured_seconds,
                    estimated_bytes=stage.estimated_bytes,
                    actual_peak_bytes=result.peak_memory_bytes,
                    threshold_bytes=plan.threshold_bytes,
                    recovery=recovery,
                )
                measured += result.measured_seconds
                modeled_extra += result.modeled_extra_seconds
                peak = max(peak, result.peak_memory_bytes)
                for key, value in result.detail.items():
                    detail[f"stage{i}.{key}"] = value
                detail[f"stage{i}.representation"] = float(
                    list(Representation).index(stage.representation)
                )
                if recovery:
                    detail[f"stage{i}.recovery"] = 1.0
                outputs = result.outputs
                current = outputs
                node_base += len(stage.nodes)
        self._m_predict_batches.inc()
        self._m_predict_rows.inc(float(x.shape[0]))
        self._m_engine_seconds.inc(measured)
        return EngineResult(
            outputs=outputs,
            engine="hybrid",
            measured_seconds=measured,
            modeled_extra_seconds=modeled_extra,
            peak_memory_bytes=peak,
            detail=detail,
        )

    # -- resilience ---------------------------------------------------------

    def _run_stage_guarded(
        self,
        stage: PlanStage,
        x: np.ndarray,
        model_info: ModelInfo,
        plan: InferencePlan,
        stage_index: int,
        node_base: int,
        recoveries_left: int,
    ) -> tuple[EngineResult, str, int]:
        """Run one stage with breaker routing and failure recovery.

        Returns ``(result, recovery_tag, recoveries_left)`` where the tag
        is ``""`` when the stage ran as planned.  Raises the original
        engine error once the per-query recovery budget is exhausted.
        """
        forced = plan.forced is not None
        breaker = None
        if self.breakers is not None and not forced:
            breaker = self.breakers.get(f"engine:{stage.representation.value}")
        relowerable = not forced and self._can_relower(stage, x)
        if (
            breaker is not None
            and relowerable
            and self.config.resilience_enabled
        ):
            allowed, _state = breaker.allow()
            if not allowed:
                # Breaker open for this engine: route around it instead of
                # attempting a run we expect to fail.  Half-open probes come
                # back as allowed=True and take the normal path below.
                result = self._relower(stage, x, model_info)
                self._note_rescue(plan, stage, node_base)
                self._m_recoveries["preemptive"].inc()
                return result, "preemptive", recoveries_left
        deadline = Deadline.for_stage(
            self.config, f"{plan.model.name}:stage{stage_index}"
        )
        checkpoint = deadline.checkpoint() if deadline is not None else None
        try:
            result = self._run_stage(stage, x, model_info, checkpoint=checkpoint)
        except RECOVERABLE as exc:
            if breaker is not None:
                breaker.record_failure()
            if recoveries_left <= 0 or not self.config.resilience_enabled:
                raise
            if relowerable:
                result = self._relower(stage, x, model_info)
                self._note_rescue(plan, stage, node_base)
                self._m_recoveries["relowered"].inc()
                return result, "relowered", recoveries_left - 1
            if isinstance(exc, OutOfMemoryError) and x.shape[0] > 1:
                result, pieces = self._split_stage(stage, x, model_info)
                self._note_rescue(plan, stage, node_base)
                self._m_recoveries["split"].inc()
                return result, f"split({pieces})", recoveries_left - 1
            raise
        if breaker is not None:
            breaker.record_success()
        return result, "", recoveries_left

    def _can_relower(self, stage: PlanStage, x: np.ndarray) -> bool:
        """True when the stage can be re-run as a relational vector pipeline."""
        return (
            stage.representation is not Representation.RELATION_CENTRIC
            and x.ndim == 2
            and all(node.op in VECTOR_SAFE_OPS for node in stage.nodes)
        )

    def _relower(
        self, stage: PlanStage, x: np.ndarray, model_info: ModelInfo
    ) -> EngineResult:
        """Re-run a whole-tensor stage through the relation engine."""
        with self._relation_lock:
            return self.relation_engine.run_vector_stage(
                stage.layers, x, model_info
            )

    def _split_stage(
        self, stage: PlanStage, x: np.ndarray, model_info: ModelInfo
    ) -> tuple[EngineResult, int]:
        """Retry an OOMed stage on recursively halved batches.

        The full batch already failed, so start from the halves; each
        half that still OOMs splits again until the configured floor,
        below which the error propagates (the operator itself, not the
        batch, is what does not fit).
        """
        mid = x.shape[0] // 2
        left, pieces_l = self._run_split(stage, x[:mid], model_info)
        right, pieces_r = self._run_split(stage, x[mid:], model_info)
        return _merge_results(left, right), pieces_l + pieces_r

    def _run_split(
        self, stage: PlanStage, chunk: np.ndarray, model_info: ModelInfo
    ) -> tuple[EngineResult, int]:
        try:
            return self._run_stage(stage, chunk, model_info), 1
        except OutOfMemoryError:
            floor = max(1, self.config.resilience_split_floor_rows)
            if chunk.shape[0] <= floor or chunk.shape[0] <= 1:
                raise
            mid = chunk.shape[0] // 2
            left, pieces_l = self._run_split(stage, chunk[:mid], model_info)
            right, pieces_r = self._run_split(stage, chunk[mid:], model_info)
            return _merge_results(left, right), pieces_l + pieces_r

    def _note_rescue(
        self, plan: InferencePlan, stage: PlanStage, node_base: int
    ) -> None:
        if self.ledger is None:
            return
        for offset, node in enumerate(stage.nodes):
            self.ledger.note_rescue(
                plan.model.name, node_base + offset, op=node.op.value
            )

    def _stage_peak(self, stage: PlanStage) -> int:
        """Best-effort peak bytes for a stage that failed outright."""
        if stage.representation is Representation.UDF_CENTRIC:
            return self.db_budget.peak
        if stage.representation is Representation.DL_CENTRIC:
            return self.dl_budget.peak
        return self.relation_engine.budget.peak

    # -- dispatch -----------------------------------------------------------

    def _run_stage(
        self,
        stage: PlanStage,
        x: np.ndarray,
        model_info: ModelInfo,
        checkpoint=None,
    ) -> EngineResult:
        if stage.representation is Representation.UDF_CENTRIC:
            return self.udf_engine.run_layers(stage.layers, x, checkpoint=checkpoint)
        if stage.representation is Representation.RELATION_CENTRIC:
            with self._relation_lock:
                return self._run_relation_stage(stage, x, model_info, checkpoint)
        if stage.representation is Representation.DL_CENTRIC:
            return self._run_dl_stage(stage, x)
        raise PlanError(f"stage has no representation assigned: {stage.describe()}")

    def _run_relation_stage(
        self,
        stage: PlanStage,
        x: np.ndarray,
        model_info: ModelInfo,
        checkpoint=None,
    ) -> EngineResult:
        first_op = stage.nodes[0].op
        if first_op is LinAlgOp.CONV2D:
            conv = stage.nodes[0].layer
            assert isinstance(conv, Conv2d)
            apply_relu = len(stage.nodes) > 1 and isinstance(
                stage.nodes[1].layer, ReLU
            )
            if len(stage.nodes) > (2 if apply_relu else 1):
                raise PlanError(
                    "relation-centric conv stages support conv [+ relu] only"
                )
            return self.relation_engine.run_conv_stage(
                conv, x, model_info, apply_relu=apply_relu
            )
        return self.relation_engine.run_vector_stage(
            stage.layers, x, model_info, checkpoint=checkpoint
        )

    def _run_dl_stage(self, stage: PlanStage, x: np.ndarray) -> EngineResult:
        """Offload a stage: pay modeled wire cost both ways, then run."""
        stage_model = Model("offload", stage.layers, input_shape=tuple(x.shape[1:]))
        result = self.dl_engine.run_on_array(stage_model, x)
        boundary_bytes = x.nbytes + result.outputs.nbytes
        wire = self.config.connector.wire_time(boundary_bytes, x.shape[0])
        result.modeled_extra_seconds += wire
        result.detail["boundary_wire_s"] = wire
        return result


def _merge_results(left: EngineResult, right: EngineResult) -> EngineResult:
    """Combine two half-batch results into one stage result."""
    return EngineResult(
        outputs=np.concatenate([left.outputs, right.outputs], axis=0),
        engine=left.engine,
        measured_seconds=left.measured_seconds + right.measured_seconds,
        modeled_extra_seconds=left.modeled_extra_seconds
        + right.modeled_extra_seconds,
        peak_memory_bytes=max(left.peak_memory_bytes, right.peak_memory_bytes),
    )
