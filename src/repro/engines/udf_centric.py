"""The UDF-centric engine (Fig. 1b).

The whole model (or a fused sub-sequence of its layers) runs as one UDF
*inside* the database process, directly over rows pulled from the buffer
pool — no cross-system transfer.  The trade-off the paper measures: a
naive single UDF keeps every intermediate activation alive until it
returns (``eager_free=False``), so its peak memory is the *sum* of the
activations, which is why the UDF-centric column of Table 3 OOMs before
TensorFlow does.
"""

from __future__ import annotations

import time
from typing import Iterator, Sequence

import numpy as np

from ..dlruntime.layers import Layer, Model
from ..dlruntime.memory import MemoryBudget
from ..relational.operators import MapRows, Operator
from ..relational.schema import ColumnType, Schema
from ..telemetry import DISABLED, Telemetry
from .base import EngineResult


class UdfCentricEngine:
    """Runs model layers as in-process UDFs against a DB memory budget."""

    def __init__(
        self,
        budget: MemoryBudget,
        eager_free: bool = False,
        telemetry: Telemetry | None = None,
    ):
        self.budget = budget
        self.eager_free = eager_free
        self._telemetry = telemetry if telemetry is not None else DISABLED
        self._m_run_seconds = self._telemetry.registry.histogram(
            "engine_run_seconds", "Per-invocation engine time", engine="udf-centric"
        )

    def run_layers(
        self,
        layers: Sequence[Layer],
        x: np.ndarray,
        checkpoint=None,
    ) -> EngineResult:
        """Execute a fused layer sequence over one input array.

        ``checkpoint`` (if given) runs before every layer — the
        executor's cooperative stage-deadline hook.
        """
        stage_model = _as_model(layers, x)
        self.budget.reset_peak()
        start = time.perf_counter()
        outputs = stage_model.forward(
            x, budget=self.budget, eager_free=self.eager_free, checkpoint=checkpoint
        )
        measured = time.perf_counter() - start
        self._m_run_seconds.observe(measured)
        self._telemetry.audit.observe_peak("udf-centric", self.budget.peak)
        return EngineResult(
            outputs=outputs,
            engine="udf-centric",
            measured_seconds=measured,
            peak_memory_bytes=self.budget.peak,
        )

    def run_model(self, model: Model, x: np.ndarray) -> EngineResult:
        """Whole-model-as-one-UDF execution (the small-model fast path)."""
        return self.run_layers(model.layers, x)

    def as_map_operator(
        self,
        source: Operator,
        model: Model,
        feature_cols: Sequence[str],
        batch_size: int = 1024,
        output: str = "prediction",
    ) -> MapRows:
        """Wrap the model as a batch UDF over a relational operator.

        This is the form in which the UDF-centric representation appears
        inside SQL plans: a :class:`MapRows` whose UDF assembles the
        feature matrix and runs the fused forward pass.
        """
        schema = source.schema
        feature_idx = [schema.index_of(c) for c in feature_cols]
        budget = self.budget
        eager = self.eager_free

        def model_udf(batch: list[tuple]) -> Iterator[tuple]:
            features = np.array(
                [[row[i] for i in feature_idx] for row in batch], dtype=np.float64
            )
            scores = model.forward(features, budget=budget, eager_free=eager)
            for pred in np.argmax(scores, axis=-1):
                yield (int(pred),)

        return MapRows(
            source,
            model_udf,
            Schema.of((output, ColumnType.INT)),
            batch_size=batch_size,
            label=f"model-udf:{model.name}",
        )


def _as_model(layers: Sequence[Layer], x: np.ndarray) -> Model:
    """Wrap a layer slice in a throwaway Model for shape-checked forward."""
    input_shape = tuple(x.shape[1:])
    return Model("stage", list(layers), input_shape=input_shape)
