"""Execution engines for the three architectures, plus the hybrid executor
that runs mixed plans produced by the adaptive optimizer."""

from .base import EngineResult
from .dl_centric import DlCentricEngine
from .udf_centric import UdfCentricEngine
from .relation_centric import RelationCentricEngine
from .hybrid import HybridExecutor

__all__ = [
    "EngineResult",
    "DlCentricEngine",
    "UdfCentricEngine",
    "RelationCentricEngine",
    "HybridExecutor",
]
