"""Shared engine result type."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class EngineResult:
    """Output of one engine invocation, with full accounting.

    ``measured_seconds`` is wall-clock work actually performed in this
    process; ``modeled_extra_seconds`` adds the calibrated components that
    the simulation cannot perform for real (connector wire time, the
    framework compute-efficiency discount).  Benchmarks report both.
    """

    outputs: np.ndarray
    engine: str
    measured_seconds: float
    modeled_extra_seconds: float = 0.0
    peak_memory_bytes: int = 0
    detail: dict[str, float] = field(default_factory=dict)

    @property
    def modeled_total_seconds(self) -> float:
        return self.measured_seconds + self.modeled_extra_seconds
