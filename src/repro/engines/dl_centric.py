"""The DL-centric engine (Fig. 1a): offload to an external framework.

Features are pulled out of the RDBMS through the ConnectorX-style
connector (real serialize/deserialize work + a modeled wire time) and the
model runs in an :class:`~repro.dlruntime.runtime.ExternalRuntime` against
that runtime's own memory budget.  This engine is both the paper's
baseline architecture and the representation the unified optimizer can
choose for operators worth offloading.
"""

from __future__ import annotations

import time

import numpy as np

from ..dlruntime.connector import Connector
from ..dlruntime.layers import Model
from ..dlruntime.runtime import ExternalRuntime
from ..relational.operators import Operator
from ..telemetry import DISABLED, Telemetry
from .base import EngineResult


class DlCentricEngine:
    """Connector + external runtime, as one engine."""

    def __init__(
        self,
        connector: Connector,
        runtime: ExternalRuntime,
        telemetry: Telemetry | None = None,
    ):
        self.connector = connector
        self.runtime = runtime
        self._telemetry = telemetry if telemetry is not None else DISABLED
        self._m_run_seconds = self._telemetry.registry.histogram(
            "engine_run_seconds", "Per-invocation engine time", engine="dl-centric"
        )
        self._m_wire_bytes = self._telemetry.registry.counter(
            "connector_wire_bytes_total", "Bytes moved across the connector"
        )

    def run_from_source(
        self,
        model: Model,
        source: Operator,
        feature_cols: list[str],
    ) -> EngineResult:
        """Extract features from a relational source, then infer."""
        extract = self.connector.extract(source)
        features = extract.feature_matrix(feature_cols)
        return self._run(model, features, extract.serialize_seconds,
                         extract.modeled_wire_seconds, extract.wire_bytes)

    def run_on_blobs(
        self,
        model: Model,
        source: Operator,
        blob_col: str,
        sample_shape: tuple[int, ...],
    ) -> EngineResult:
        """Extract BLOB tensors (e.g. image tiles), reshape, then infer."""
        extract = self.connector.extract(source)
        flat = extract.columns[blob_col.lower()]
        features = flat.reshape((flat.shape[0],) + sample_shape)
        return self._run(model, features, extract.serialize_seconds,
                         extract.modeled_wire_seconds, extract.wire_bytes)

    def run_on_array(self, model: Model, features: np.ndarray) -> EngineResult:
        """Inference on an already-extracted array (no transfer accounted)."""
        return self._run(model, features, 0.0, 0.0, 0)

    def _run(
        self,
        model: Model,
        features: np.ndarray,
        transfer_measured: float,
        transfer_modeled: float,
        wire_bytes: int,
    ) -> EngineResult:
        handle = self.runtime.load_model(model)
        start = time.perf_counter()
        run = self.runtime.run(handle, features)
        compute_measured = time.perf_counter() - start
        self._m_run_seconds.observe(transfer_measured + compute_measured)
        self._m_wire_bytes.inc(float(wire_bytes))
        self._telemetry.audit.observe_peak("dl-centric", run.peak_memory_bytes)
        # The framework's calibrated compute advantage: the modeled total
        # replaces the measured compute with measured / efficiency.
        compute_discount = run.measured_seconds - run.modeled_seconds
        return EngineResult(
            outputs=run.outputs,
            engine=f"dl-centric:{self.runtime.name}",
            measured_seconds=transfer_measured + compute_measured,
            modeled_extra_seconds=transfer_modeled - compute_discount,
            peak_memory_bytes=run.peak_memory_bytes,
            detail={
                "transfer_measured_s": transfer_measured,
                "transfer_modeled_wire_s": transfer_modeled,
                "compute_measured_s": run.measured_seconds,
                "compute_modeled_s": run.modeled_seconds,
                "wire_bytes": float(wire_bytes),
            },
        )
