"""The relation-centric engine (Fig. 1c).

Weights live as tensor-block relations inside the RDBMS; a matmul executes
as ``HashJoin(input blocks, weight blocks) → multiply UDF → SUM_BLOCK
aggregation`` through the ordinary relational operators and the buffer
pool.  Inputs are processed in *row stripes* so that peak memory is one
stripe of input plus one stripe of output, regardless of operator size —
the property that lets this engine complete the Table 3 workloads that
OOM every whole-tensor engine.

Two stage shapes cover the paper's models:

* vector stages (``(batch, features)`` inputs) chain MATMUL / RELU /
  SIGMOID / SOFTMAX pipelines stripe by stripe;
* convolution stages apply the spatial (im2col) rewrite per image and
  write the output feature map *into a result table*, because for
  workloads like LandCover the output itself dwarfs memory.
"""

from __future__ import annotations

import itertools
import time

import numpy as np

from ..config import SystemConfig
from ..dlruntime.layers import Conv2d, Linear, ReLU, Sigmoid, Softmax
from ..dlruntime.memory import MemoryBudget
from ..errors import PlanError
from ..models.store import weight_block_table
from ..relational.operators import Operator
from ..storage.catalog import Catalog, ModelInfo, TableInfo
from ..telemetry import DISABLED, Telemetry
from ..tensor.blocked import BlockedMatrix
from ..tensor.im2col import im2col
from ..tensor.linalg import (
    bias_add_pipeline,
    block_scan_from_matrix,
    block_scan_from_table,
    drain_to_matrix,
    elementwise_pipeline,
    matmul_pipeline,
)
from .base import EngineResult

_result_counter = itertools.count()


class RelationCentricEngine:
    """Executes lowered layer chains as relational block pipelines."""

    def __init__(
        self,
        catalog: Catalog,
        config: SystemConfig,
        budget: MemoryBudget | None = None,
        stripe_rows: int | None = None,
        telemetry: Telemetry | None = None,
    ):
        if config.tensor_block_rows != config.tensor_block_cols:
            raise PlanError(
                "relation-centric execution chains matmuls, which requires "
                "square tensor blocks (block rows == block cols)"
            )
        self.catalog = catalog
        self.config = config
        self.budget = budget if budget is not None else MemoryBudget(None, "relation")
        self.stripe_rows = (
            stripe_rows if stripe_rows is not None else config.tensor_block_rows * 8
        )
        self._telemetry = telemetry if telemetry is not None else DISABLED
        self._m_run_seconds = self._telemetry.registry.histogram(
            "engine_run_seconds", "Per-invocation engine time", engine="relation-centric"
        )
        self._m_stripes = self._telemetry.registry.counter(
            "relation_stripes_total", "Row stripes processed block-wise"
        )

    @property
    def _block_shape(self) -> tuple[int, int]:
        return (self.config.tensor_block_rows, self.config.tensor_block_cols)

    # -- vector stages ------------------------------------------------------

    def run_vector_stage(
        self,
        layers: list,
        x: np.ndarray,
        model_info: ModelInfo,
        checkpoint=None,
    ) -> EngineResult:
        """Chain MATMUL/RELU/SIGMOID/SOFTMAX pipelines over row stripes.

        ``checkpoint`` (if given) runs before every stripe — the
        executor's cooperative stage-deadline hook.
        """
        if x.ndim != 2:
            raise PlanError(
                f"vector stage expects (batch, features) input, got {x.shape}"
            )
        self.budget.reset_peak()
        out_features = _stage_output_features(layers, x.shape[1])
        outputs = np.empty((x.shape[0], out_features))
        start = time.perf_counter()
        for lo in range(0, x.shape[0], self.stripe_rows):
            if checkpoint is not None:
                checkpoint()
            stripe = x[lo : lo + self.stripe_rows]
            with self.budget.borrow(stripe.nbytes, tag="stripe-in"):
                result = self._run_stripe(layers, stripe, model_info)
                with self.budget.borrow(result.nbytes, tag="stripe-out"):
                    outputs[lo : lo + stripe.shape[0]] = result
            self._m_stripes.inc()
        measured = time.perf_counter() - start
        self._m_run_seconds.observe(measured)
        self._telemetry.audit.observe_peak("relation-centric", self.budget.peak)
        return EngineResult(
            outputs=outputs,
            engine="relation-centric",
            measured_seconds=measured,
            peak_memory_bytes=self.budget.peak,
        )

    def _run_stripe(
        self, layers: list, stripe: np.ndarray, model_info: ModelInfo
    ) -> np.ndarray:
        block_shape = self._block_shape
        current = BlockedMatrix.from_dense(stripe, block_shape)
        pipeline: Operator | None = None
        current_cols = stripe.shape[1]

        def source() -> Operator:
            if pipeline is not None:
                return pipeline
            return block_scan_from_matrix(current, "a", label="stripe")

        for layer in layers:
            if isinstance(layer, Linear):
                weights = weight_block_table(
                    self.catalog, model_info, layer, block_shape
                )
                src = source()
                # matmul_pipeline expects prefixed inputs; re-prefix chains.
                left = _reprefix(src, "a") if pipeline is not None else src
                mm = matmul_pipeline(left, block_scan_from_table(weights, "b"))
                pipeline = bias_add_pipeline(
                    mm, layer.bias.data, block_cols=block_shape[1]
                )
                current_cols = layer.out_features
            elif isinstance(layer, ReLU):
                pipeline = elementwise_pipeline(
                    source() if pipeline is None else pipeline,
                    lambda v: np.maximum(v, 0.0),
                    "relu",
                )
            elif isinstance(layer, Sigmoid):
                pipeline = elementwise_pipeline(
                    source() if pipeline is None else pipeline,
                    lambda v: 1.0 / (1.0 + np.exp(-v)),
                    "sigmoid",
                )
            elif isinstance(layer, Softmax):
                # Softmax needs whole rows: drain the stripe and apply the
                # two-pass blocked softmax, then continue streaming.
                shape = (stripe.shape[0], current_cols)
                drained = drain_to_matrix(
                    source() if pipeline is None else pipeline, shape, block_shape
                )
                current = drained.row_softmax()
                pipeline = None
            else:
                raise PlanError(
                    f"relation-centric vector stage cannot execute layer "
                    f"{type(layer).__name__}"
                )
        shape = (stripe.shape[0], current_cols)
        if pipeline is None:
            return current.to_dense()
        return drain_to_matrix(pipeline, shape, block_shape).to_dense()

    # -- convolution stages --------------------------------------------------

    def run_conv_stage(
        self,
        conv: Conv2d,
        images: np.ndarray,
        model_info: ModelInfo,
        apply_relu: bool = False,
        result_table: str | None = None,
    ) -> EngineResult:
        """Spatially rewrite a convolution and run it block-wise.

        Each image is flattened to a patch matrix F (im2col); F × Kᵀ runs
        as join + aggregation against the kernel block table; output
        blocks stream into ``result_table`` (the feature map is assumed
        too large to materialise — that is why this representation was
        chosen).  Returns the result table in ``detail``.
        """
        if images.ndim != 4:
            raise PlanError(
                f"conv stage expects (batch, H, W, C) input, got {images.shape}"
            )
        block_shape = self._block_shape
        weights = weight_block_table(self.catalog, model_info, conv, block_shape)
        name = result_table or f"__result_{model_info.name}_{next(_result_counter)}"
        from ..tensor.block import block_table_schema

        out_info = self.catalog.create_table(name, block_table_schema())
        kh, kw = conv.kernel_size
        self.budget.reset_peak()
        start = time.perf_counter()
        out_h = out_w = 0
        block_row_offset = 0
        for image in images:
            patches = im2col(image, kh, kw, conv.stride, conv.padding)
            out_h, out_w = _conv_hw(image, conv)
            with self.budget.borrow(patches.nbytes, tag="im2col"):
                for lo in range(0, patches.shape[0], self.stripe_rows):
                    stripe = patches[lo : lo + self.stripe_rows]
                    blocked = BlockedMatrix.from_dense(stripe, block_shape)
                    mm = matmul_pipeline(
                        block_scan_from_matrix(blocked, "a", label="patches"),
                        block_scan_from_table(weights, "b"),
                    )
                    pipeline = bias_add_pipeline(
                        mm, conv.bias.data, block_cols=block_shape[1]
                    )
                    if apply_relu:
                        pipeline = elementwise_pipeline(
                            pipeline, lambda v: np.maximum(v, 0.0), "relu"
                        )
                    for row in pipeline:
                        # Shift block rows so each stripe/image lands in its
                        # own region of the output feature-map relation.
                        shifted = (row[0] + block_row_offset,) + row[1:]
                        out_info.heap.insert(shifted)
                        out_info.row_count += 1
                    block_row_offset += -(-stripe.shape[0] // block_shape[0])
                    self._m_stripes.inc()
        measured = time.perf_counter() - start
        self._m_run_seconds.observe(measured)
        self._telemetry.audit.observe_peak("relation-centric", self.budget.peak)
        return EngineResult(
            outputs=np.empty((0,)),
            engine="relation-centric",
            measured_seconds=measured,
            peak_memory_bytes=self.budget.peak,
            detail={
                "result_table_rows": float(out_info.row_count),
                "out_h": float(out_h),
                "out_w": float(out_w),
            },
        )

    def load_conv_result(
        self,
        result_table: str,
        images: int,
        out_h: int,
        out_w: int,
        out_channels: int,
    ) -> np.ndarray:
        """Materialise a conv result table (tests / small outputs only).

        Requires each image's patch count (``out_h * out_w``) to be a
        multiple of the block row size when ``images > 1`` so that block
        indices align across images (both Table 2 workloads satisfy this
        at benchmark scale).
        """
        info = self.catalog.get_table(result_table)
        per_image_rows = out_h * out_w
        total_rows = images * per_image_rows
        # Block rows were emitted contiguously per stripe, per image.
        matrix = BlockedMatrix.load(
            info, (total_rows, out_channels), self._block_shape
        )
        dense = matrix.to_dense()
        return dense.reshape(images, out_h, out_w, out_channels)


def _stage_output_features(layers: list, in_features: int) -> int:
    features = in_features
    for layer in layers:
        if isinstance(layer, Linear):
            features = layer.out_features
    return features


def _conv_hw(image: np.ndarray, conv: Conv2d) -> tuple[int, int]:
    out_h, out_w, __ = conv.output_shape(image.shape)
    return out_h, out_w


def _reprefix(op: Operator, prefix: str) -> Operator:
    """Rename unprefixed block columns to ``<prefix>_…`` for a join input."""
    from ..relational.expressions import ColumnRef
    from ..relational.operators import Project
    from ..tensor.linalg import BLOCK_COLUMNS

    return Project(op, [(ColumnRef(c), f"{prefix}_{c}") for c in BLOCK_COLUMNS])
