"""The paper's model zoo (Tables 1 and 2) and model persistence."""

from .definitions import (
    amazon_14k_fc,
    bosch_ffnn,
    cache_cnn,
    cache_ffnn,
    deepbench_conv1,
    encoder_fc,
    fraud_fc_256,
    fraud_fc_512,
    landcover,
)
from .zoo import MODEL_ZOO, ZooEntry, build_model, zoo_entries
from .store import load_model_weights, store_model_blocks

__all__ = [
    "fraud_fc_256",
    "fraud_fc_512",
    "encoder_fc",
    "amazon_14k_fc",
    "deepbench_conv1",
    "landcover",
    "bosch_ffnn",
    "cache_cnn",
    "cache_ffnn",
    "MODEL_ZOO",
    "ZooEntry",
    "build_model",
    "zoo_entries",
    "store_model_blocks",
    "load_model_weights",
]
