"""Persisting model parameters as tensor-block relations.

The relation-centric representation stores each weight matrix as a block
table inside the RDBMS (Sec. 4's data/model co-management).  Linear weights
are stored as-is (``in_features × out_features``); convolution kernels are
stored as the transposed kernel matrix ``kh·kw·C × out_channels`` so the
engine's im2col patches can multiply straight into them.
"""

from __future__ import annotations

import numpy as np

from ..dlruntime.layers import Conv2d, Layer, Linear
from ..storage.catalog import Catalog, ModelInfo, TableInfo
from ..tensor.blocked import BlockedMatrix


def _weight_matrix(layer: Layer) -> np.ndarray | None:
    """The 2-D matrix the relation-centric engine multiplies against."""
    if isinstance(layer, Linear):
        return layer.weight.data
    if isinstance(layer, Conv2d):
        out_channels = layer.out_channels
        return layer.kernels.data.reshape(out_channels, -1).T
    return None


def block_table_name(model_name: str, layer_name: str) -> str:
    return f"__model_{model_name}_{layer_name}_weight"


def store_model_blocks(
    catalog: Catalog,
    info: ModelInfo,
    block_shape: tuple[int, int],
) -> dict[str, str]:
    """Materialise every weight matrix of a registered model into block tables.

    Idempotent: layers already stored are skipped.  Returns the mapping of
    ``layer_name`` → table name (also recorded in ``info.block_tables``).
    """
    for i, layer in enumerate(info.model.layers):
        matrix = _weight_matrix(layer)
        if matrix is None:
            continue
        layer_name = layer.name or f"layer{i}"
        if layer_name in info.block_tables:
            continue
        table = block_table_name(info.name, layer_name)
        if not catalog.has_table(table):
            BlockedMatrix.from_dense(matrix, block_shape).store(catalog, table)
        info.block_tables[layer_name] = table
    return dict(info.block_tables)


def weight_block_table(
    catalog: Catalog, info: ModelInfo, layer: Layer, block_shape: tuple[int, int]
) -> TableInfo:
    """The block table for one layer's weights, storing it on first use."""
    layer_name = layer.name
    if layer_name not in info.block_tables:
        store_model_blocks(catalog, info, block_shape)
    return catalog.get_table(info.block_tables[layer_name])


def load_model_weights(
    catalog: Catalog,
    info: ModelInfo,
    layer_name: str,
    block_shape: tuple[int, int],
) -> BlockedMatrix:
    """Rebuild one layer's weight matrix from its block table."""
    layer = next(l for l in info.model.layers if l.name == layer_name)
    matrix = _weight_matrix(layer)
    if matrix is None:
        raise ValueError(f"layer {layer_name!r} has no stored weight matrix")
    table = catalog.get_table(info.block_tables[layer_name])
    return BlockedMatrix.load(table, matrix.shape, block_shape)  # type: ignore[arg-type]
