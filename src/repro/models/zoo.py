"""A registry over the model builders, with the paper's metadata attached."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from ..errors import ModelError
from ..dlruntime.layers import Model
from . import definitions


@dataclass(frozen=True)
class ZooEntry:
    """One row of the paper's Table 1 or Table 2."""

    key: str
    table: str  # "table1" or "table2" or "sec7.2"
    paper_shape: str
    builder: Callable[..., Model]
    scalable: bool = False


MODEL_ZOO: dict[str, ZooEntry] = {
    "fraud-fc-256": ZooEntry(
        "fraud-fc-256", "table1", "28 / 256 / 2", definitions.fraud_fc_256
    ),
    "fraud-fc-512": ZooEntry(
        "fraud-fc-512", "table1", "28 / 512 / 2", definitions.fraud_fc_512
    ),
    "encoder-fc": ZooEntry(
        "encoder-fc", "table1", "76 / 3,072 / 768", definitions.encoder_fc
    ),
    "amazon-14k-fc": ZooEntry(
        "amazon-14k-fc",
        "table1",
        "597,540 / 1,024 / 14,588",
        definitions.amazon_14k_fc,
        scalable=True,
    ),
    "deepbench-conv1": ZooEntry(
        "deepbench-conv1",
        "table2",
        "112×112×64, kernels 64×64×1×1",
        definitions.deepbench_conv1,
        scalable=True,
    ),
    "landcover": ZooEntry(
        "landcover",
        "table2",
        "2500×2500×3, kernels 2048×3×1×1",
        definitions.landcover,
        scalable=True,
    ),
    "bosch-ffnn": ZooEntry(
        "bosch-ffnn", "sec7.2", "968 / 256 / 2", definitions.bosch_ffnn
    ),
    "cache-cnn": ZooEntry(
        "cache-cnn", "sec7.2", "conv32·3×3, conv16·3×3, fc64, fc10", definitions.cache_cnn
    ),
    "cache-ffnn": ZooEntry(
        "cache-ffnn", "sec7.2", "784/128/1024/2048/64/10", definitions.cache_ffnn
    ),
}


def build_model(key: str, **kwargs: object) -> Model:
    """Build a zoo model by key, forwarding builder kwargs (e.g. ``scale``)."""
    entry = MODEL_ZOO.get(key)
    if entry is None:
        raise ModelError(
            f"unknown zoo model {key!r}; available: {sorted(MODEL_ZOO)}"
        )
    return entry.builder(**kwargs)  # type: ignore[arg-type]


def zoo_entries(table: str | None = None) -> Iterator[ZooEntry]:
    """Iterate zoo entries, optionally filtered by paper table."""
    for entry in MODEL_ZOO.values():
        if table is None or entry.table == table:
            yield entry
