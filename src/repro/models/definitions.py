"""Builders for every model the paper evaluates.

Table 1 (fully connected, one hidden layer)::

    Fraud-FC-256     28 / 256 / 2
    Fraud-FC-512     28 / 512 / 2
    Encoder-FC       76 / 3,072 / 768
    Amazon-14k-FC    597,540 / 1,024 / 14,588

Table 2 (convolutional, stride 1, no padding)::

    DeepBench-CONV1  input 112×112×64, kernels 64×64×1×1
    LandCover        input 2500×2500×3, kernels 2048×3×1×1

Plus the Sec. 7.2.1 Bosch FFNN (968 / 256 / 2) and the two Sec. 7.2.2
caching models.  The huge models accept a ``scale`` factor: the paper ran
them on a 61 GB instance, so the default benchmark scale shrinks every
dimension proportionally while preserving the relationships the results
depend on (weight larger than the optimizer threshold, activations larger
than the whole-tensor engines' budgets).  ``scale=1.0`` builds the paper's
exact shapes.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from ..dlruntime.layers import Conv2d, Flatten, Linear, Model, ReLU, Softmax


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    if scale <= 0 or scale > 1:
        raise ModelError(f"scale must be in (0, 1], got {scale}")
    return max(minimum, int(round(value * scale)))


def one_hidden_fc(
    name: str, in_features: int, hidden: int, out_features: int, seed: int = 0
) -> Model:
    """A Table 1 style model: Linear → ReLU → Linear → Softmax."""
    rng = _rng(seed)
    return Model(
        name,
        [
            Linear(in_features, hidden, rng=rng, name="fc1"),
            ReLU(),
            Linear(hidden, out_features, rng=rng, name="fc2"),
            Softmax(),
        ],
        input_shape=(in_features,),
    )


def fraud_fc_256(seed: int = 0) -> Model:
    """Fraud-FC-256: 28 / 256 / 2 (credit-card fraud detection)."""
    return one_hidden_fc("fraud-fc-256", 28, 256, 2, seed)


def fraud_fc_512(seed: int = 1) -> Model:
    """Fraud-FC-512: 28 / 512 / 2."""
    return one_hidden_fc("fraud-fc-512", 28, 512, 2, seed)


def encoder_fc(seed: int = 2) -> Model:
    """Encoder-FC: 76 / 3,072 / 768 (an encoder projection block)."""
    return one_hidden_fc("encoder-fc", 76, 3072, 768, seed)


def amazon_14k_fc(scale: float = 1.0, seed: int = 3) -> Model:
    """Amazon-14k-FC: 597,540 / 1,024 / 14,588 (extreme classification).

    ``scale`` shrinks the feature and label dimensions (the hidden layer is
    kept at 1,024 as in the paper).  At any scale, the first weight matrix
    remains by far the largest operator — the property Table 3 relies on.
    """
    in_features = _scaled(597_540, scale)
    out_features = _scaled(14_588, scale)
    return one_hidden_fc(
        f"amazon-14k-fc{'' if scale == 1.0 else f'-s{scale:g}'}",
        in_features,
        1024,
        out_features,
        seed,
    )


def deepbench_conv1(scale: float = 1.0, seed: int = 4) -> Model:
    """DeepBench-CONV1: one 1×1 conv, 64→64 channels on 112×112 input."""
    side = _scaled(112, scale)
    channels = _scaled(64, scale, minimum=2)
    rng = _rng(seed)
    return Model(
        f"deepbench-conv1{'' if scale == 1.0 else f'-s{scale:g}'}",
        [Conv2d(channels, channels, (1, 1), rng=rng, name="conv1")],
        input_shape=(side, side, channels),
    )


def landcover(
    spatial: int = 2500, out_channels: int = 2048, seed: int = 5
) -> Model:
    """LandCover: one 1×1 conv, 3→2048 channels on 2500×2500 imagery.

    The output feature map (2500² × 2048) dwarfs memory, which is why the
    paper's optimizer lowers this operator to the relation-centric
    representation.  ``spatial`` / ``out_channels`` allow a proportional
    scale-down.
    """
    rng = _rng(seed)
    suffix = "" if (spatial, out_channels) == (2500, 2048) else f"-{spatial}x{out_channels}"
    return Model(
        f"landcover{suffix}",
        [Conv2d(3, out_channels, (1, 1), rng=rng, name="conv1")],
        input_shape=(spatial, spatial, 3),
    )


def bosch_ffnn(in_features: int = 968, seed: int = 6) -> Model:
    """The Sec. 7.2.1 model: 968 features / 256 hidden / 2 outputs."""
    return one_hidden_fc("bosch-ffnn", in_features, 256, 2, seed)


def cache_cnn(seed: int = 7) -> Model:
    """Sec. 7.2.2 CNN: conv 32×3×3, conv 16×3×3, FC 64, FC 10 (on 28×28)."""
    rng = _rng(seed)
    return Model(
        "cache-cnn",
        [
            Conv2d(1, 32, (3, 3), rng=rng, name="conv1"),
            ReLU(),
            Conv2d(32, 16, (3, 3), rng=rng, name="conv2"),
            ReLU(),
            Flatten(),
            Linear(24 * 24 * 16, 64, rng=rng, name="fc1"),
            ReLU(),
            Linear(64, 10, rng=rng, name="fc2"),
            Softmax(),
        ],
        input_shape=(28, 28, 1),
    )


def cache_ffnn(seed: int = 8) -> Model:
    """Sec. 7.2.2 FFNN: FC layers of 128, 1024, 2048, 64 neurons (on MNIST)."""
    rng = _rng(seed)
    return Model(
        "cache-ffnn",
        [
            Linear(784, 128, rng=rng, name="fc1"),
            ReLU(),
            Linear(128, 1024, rng=rng, name="fc2"),
            ReLU(),
            Linear(1024, 2048, rng=rng, name="fc3"),
            ReLU(),
            Linear(2048, 64, rng=rng, name="fc4"),
            ReLU(),
            Linear(64, 10, rng=rng, name="fc5"),
            Softmax(),
        ],
        input_shape=(784,),
    )
