"""The health subsystem: one aggregated view of runtime resilience state.

A serving database accumulates health signals in many places: circuit
breakers (per served model in the front-end, per engine in the hybrid
executor), rescue counts in the recovery ledger, memory-budget
utilisation, server queue depths, and armed fault injections.  This
module folds them into one report with a three-level status per
component::

    ok        component operating normally
    degraded  working, but only via fallbacks (open/half-open breakers
              probing, rescues recorded, budgets or queues near full)
    failing   actively rejecting or erroring (open breakers, gave-up
              recoveries, exhausted budgets)

The report surfaces in three places: ``Database.health()``, the ``SHOW
HEALTH`` SQL statement, and ``health_*`` gauges in the metrics registry
(refreshed on every collection).
"""

from __future__ import annotations

from dataclasses import dataclass

from .resilience.breaker import CLOSED, HALF_OPEN, OPEN

#: Columns for ``SHOW HEALTH`` cursors.
HEALTH_COLUMNS: tuple[str, ...] = ("component", "status", "detail")

OK = "ok"
DEGRADED = "degraded"
FAILING = "failing"

_SEVERITY = {OK: 0, DEGRADED: 1, FAILING: 2}

#: Budget / queue utilisation levels that degrade or fail a component.
DEGRADED_UTILISATION = 0.80
FAILING_UTILISATION = 0.95


@dataclass(frozen=True)
class ComponentHealth:
    """One component's contribution to the report."""

    component: str
    status: str
    detail: str

    def as_row(self) -> tuple[str, str, str]:
        return (self.component, self.status, self.detail)


@dataclass
class HealthReport:
    """An aggregated point-in-time health snapshot."""

    components: list[ComponentHealth]

    @property
    def status(self) -> str:
        """The worst component status (``ok`` for an empty report)."""
        worst = OK
        for component in self.components:
            if _SEVERITY[component.status] > _SEVERITY[worst]:
                worst = component.status
        return worst

    @property
    def ok(self) -> bool:
        return self.status == OK

    def component(self, name: str) -> ComponentHealth | None:
        for entry in self.components:
            if entry.component == name:
                return entry
        return None

    def rows(self) -> list[tuple[str, str, str]]:
        """``SHOW HEALTH`` rows: components first, overall last."""
        rows = [c.as_row() for c in self.components]
        rows.append(("overall", self.status, f"{len(self.components)} components"))
        return rows

    def render(self) -> str:
        width = max((len(c.component) for c in self.components), default=7)
        lines = [f"overall: {self.status}"]
        for component in self.components:
            lines.append(
                f"  {component.component:<{width}}  {component.status:<8}  "
                f"{component.detail}"
            )
        return "\n".join(lines)


def _breaker_health(breaker) -> ComponentHealth:
    status = {CLOSED: OK, HALF_OPEN: DEGRADED, OPEN: FAILING}[breaker.state]
    return ComponentHealth(
        component=f"breaker:{breaker.name}",
        status=status,
        detail=(
            f"state={breaker.state} failure_rate={breaker.failure_rate:.2f} "
            f"opened_total={breaker.opened_total}"
        ),
    )


#: MemoryBudget's "no limit" sentinel is 1 << 62; anything that large is
#: effectively unlimited and always reports ok.
_UNLIMITED = 1 << 50


def _utilisation_health(
    component: str, used: int, limit: int | None, unit: str = "B"
) -> ComponentHealth:
    if not limit or limit >= _UNLIMITED:
        return ComponentHealth(component, OK, f"used={used:,}{unit} (unlimited)")
    utilisation = used / limit
    status = OK
    if utilisation >= FAILING_UTILISATION:
        status = FAILING
    elif utilisation >= DEGRADED_UTILISATION:
        status = DEGRADED
    return ComponentHealth(
        component,
        status,
        f"used={used:,}{unit} limit={limit:,}{unit} ({utilisation:.0%})",
    )


def collect(db) -> HealthReport:
    """Build the health report for one :class:`~repro.session.Database`.

    Collection is read-only and lock-free: every signal source is either
    immutable or internally synchronized, so this is safe to call from a
    monitoring thread while the serving front-end is under load.
    """
    components: list[ComponentHealth] = []
    executor = db._executor
    ledger = getattr(db, "_ledger", None)
    server = db._server

    # Engine-level circuit breakers (hybrid executor).
    if executor.breakers is not None:
        for breaker in executor.breakers:
            components.append(_breaker_health(breaker))

    # Serving front-end: per-model breakers and queue depths.
    if server is not None:
        board = getattr(server, "breakers", None)
        if board is not None:
            for breaker in board:
                components.append(_breaker_health(breaker))
        for model, depth in sorted(server.queue_depths().items()):
            components.append(
                _utilisation_health(
                    f"server.queue:{model}", depth, server.queue_capacity, unit=""
                )
            )

    # Cluster tier: one component per worker process.  DEAD slots are
    # failing (the monitor is between crash and respawn); a respawned or
    # heartbeat-stale worker is degraded; a fresh READY worker is ok.
    cluster = getattr(db, "_cluster", None)
    if cluster is not None:
        for row in cluster.snapshot()["workers"]:
            stale = row["heartbeat_age_ms"] > (
                db.config.cluster_heartbeat_timeout_ms / 2
            )
            if row["state"] != "ready":
                status = FAILING if row["state"] == "dead" else DEGRADED
            elif stale or row["restarts"]:
                status = DEGRADED
            else:
                status = OK
            components.append(
                ComponentHealth(
                    f"cluster.worker:{row['worker_id']}",
                    status,
                    f"state={row['state']} pid={row['pid']} "
                    f"restarts={row['restarts']} inflight={row['inflight']} "
                    f"heartbeat_age_ms={row['heartbeat_age_ms']:g}",
                )
            )

    # In-flight deployments: a live traffic split (canary/shadow) is a
    # deliberate degraded state — the fleet is mid-transition — and the
    # deployment's per-version breaker folds in like any other breaker.
    deployments = getattr(db, "_deployments", None)
    if deployments is not None:
        for dep in deployments.active():
            components.append(
                ComponentHealth(
                    f"deploy:{dep.model}",
                    DEGRADED,
                    f"version={dep.version} state={dep.state} "
                    f"requests={dep.requests} failures={dep.failures} "
                    f"diverged={dep.shadow_diverged}/{dep.shadow_compared}",
                )
            )
            breaker = deployments.breaker_for(dep.model, dep.version)
            if breaker is not None:
                components.append(_breaker_health(breaker))

    # Memory budgets: the DB-side and DL-runtime-side whole-tensor pools.
    components.append(
        _utilisation_health(
            "budget:db", executor.db_budget.used, executor.db_budget.limit
        )
    )
    components.append(
        _utilisation_health(
            "budget:dl", executor.dl_budget.used, executor.dl_budget.limit
        )
    )

    # Recovery activity: rescues are degraded (working via fallback),
    # gave-ups are failing (client-visible errors happened).
    rescued = sum(
        int(counter.value)
        for outcome, counter in executor._m_recoveries.items()
        if outcome != "gave-up"
    )
    gave_up = int(executor._m_recoveries["gave-up"].value)
    status = OK
    if gave_up:
        status = FAILING
    elif rescued:
        status = DEGRADED
    components.append(
        ComponentHealth(
            "recovery",
            status,
            f"rescued={rescued} gave_up={gave_up}",
        )
    )
    if ledger is not None and len(ledger):
        components.append(
            ComponentHealth(
                "recovery.ledger",
                DEGRADED,
                f"entries={len(ledger)} rescues={ledger.rescues()} "
                "(rescued operators now lowered up-front)",
            )
        )

    # Flight recorder: a dropping ring still works (newest kept) but a
    # postmortem would be missing history, so eviction degrades it.
    telemetry = db._telemetry
    if telemetry.enabled:
        recorder = telemetry.events
        components.append(
            ComponentHealth(
                "telemetry.events",
                DEGRADED if recorder.dropped else OK,
                f"buffered={len(recorder)}/{recorder.max_events} "
                f"emitted={recorder.emitted_total} dropped={recorder.dropped}",
            )
        )
        # SLO burn rates: a fast-window burn is DEGRADED (acute incident,
        # page-soon); fast + slow burning together is FAILING (sustained,
        # budget actively exhausting).
        for model, slo in sorted(telemetry.slo.snapshot().items()):
            if slo["burning_fast"] and slo["burning_slow"]:
                status = FAILING
            elif slo["burning_fast"] or slo["burning_slow"]:
                status = DEGRADED
            else:
                status = OK
            components.append(
                ComponentHealth(
                    f"slo:{model}",
                    status,
                    f"fast_burn={slo['fast_burn']} slow_burn={slo['slow_burn']} "
                    f"budget={slo['error_budget']} "
                    f"latency_ms={slo['latency_ms']:g}",
                )
            )

    # Armed fault injections mean the session is deliberately unreliable.
    if db._faults.active and db._faults.armed_count:
        components.append(
            ComponentHealth(
                "faults",
                DEGRADED,
                f"armed={db._faults.armed_count} "
                f"injected={db._faults.injected_total}",
            )
        )

    report = HealthReport(components)
    _publish(db._telemetry.registry, report)
    return report


def _publish(registry, report: HealthReport) -> None:
    """Refresh the ``health_*`` gauges from a collected report."""
    registry.gauge(
        "health_overall_status", "Worst component status (0 ok, 1 degraded, 2 failing)"
    ).set(_SEVERITY[report.status])
    registry.gauge(
        "health_components", "Components contributing to the health report"
    ).set(len(report.components))
    for component in report.components:
        registry.gauge(
            "health_component_status",
            "Per-component status (0 ok, 1 degraded, 2 failing)",
            component=component.component,
        ).set(_SEVERITY[component.status])
