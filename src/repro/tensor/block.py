"""A single tensor block and its relational row encoding.

Block tables have the schema::

    (row_blk INT, col_blk INT, nrows INT, ncols INT, data BLOB)

where ``data`` is the raw little-endian float64 payload in row-major order.
Keeping shape in separate columns (rather than a header inside the BLOB)
lets the ``SUM_BLOCK`` aggregate add payloads byte-for-byte during the
matmul → join + aggregation rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..relational.schema import ColumnType, Schema


def block_table_schema() -> Schema:
    """Schema shared by every tensor-block relation."""
    return Schema.of(
        ("row_blk", ColumnType.INT),
        ("col_blk", ColumnType.INT),
        ("nrows", ColumnType.INT),
        ("ncols", ColumnType.INT),
        ("data", ColumnType.BLOB),
    )


@dataclass(frozen=True)
class TensorBlock:
    """One block of a blocked matrix."""

    row_blk: int
    col_blk: int
    data: np.ndarray  # 2-D float64

    def __post_init__(self) -> None:
        if self.data.ndim != 2:
            raise ShapeError(f"tensor block must be 2-D, got shape {self.data.shape}")

    @property
    def shape(self) -> tuple[int, int]:
        return self.data.shape  # type: ignore[return-value]

    @property
    def nbytes(self) -> int:
        return self.data.nbytes


def block_to_row(block: TensorBlock) -> tuple[int, int, int, int, bytes]:
    """Encode a block as a row of the block-table schema."""
    data = np.ascontiguousarray(block.data, dtype=np.float64)
    return (
        block.row_blk,
        block.col_blk,
        data.shape[0],
        data.shape[1],
        data.tobytes(),
    )


def row_to_block(row: tuple) -> TensorBlock:
    """Decode a block-table row (tolerates extra leading columns)."""
    row_blk, col_blk, nrows, ncols, payload = row[-5:]
    array = np.frombuffer(payload, dtype=np.float64)
    if array.size != nrows * ncols:
        raise ShapeError(
            f"block payload has {array.size} elements, expected "
            f"{nrows}×{ncols}={nrows * ncols}"
        )
    return TensorBlock(row_blk, col_blk, array.reshape(nrows, ncols))
