"""Tensor blocks and blocked linear algebra.

A tensor is represented as a *relation of blocks* — the paper's
relation-centric representation.  :class:`BlockedMatrix` is the in-memory
view; :mod:`repro.tensor.linalg` builds the join+aggregation operator
pipelines that execute blocked matmul through the relational engine.
"""

from .block import TensorBlock, block_table_schema, block_to_row, row_to_block
from .blocked import BlockedMatrix
from .im2col import (
    conv2d_direct,
    conv2d_via_im2col,
    conv_output_shape,
    im2col,
    kernel_matrix,
)
from .linalg import (
    bias_add_pipeline,
    block_scan_from_matrix,
    block_scan_from_table,
    drain_to_matrix,
    drain_to_table,
    elementwise_pipeline,
    matmul_pipeline,
    prefixed_block_schema,
)

__all__ = [
    "TensorBlock",
    "block_table_schema",
    "block_to_row",
    "row_to_block",
    "BlockedMatrix",
    "im2col",
    "kernel_matrix",
    "conv2d_direct",
    "conv2d_via_im2col",
    "conv_output_shape",
    "matmul_pipeline",
    "elementwise_pipeline",
    "bias_add_pipeline",
    "block_scan_from_matrix",
    "block_scan_from_table",
    "drain_to_matrix",
    "drain_to_table",
    "prefixed_block_schema",
]
