"""Spatial rewriting of convolution (im2col).

Section 7.1 of the paper converts the LandCover convolution into a matrix
multiplication: each image is flattened into a patch matrix ``F`` and the
kernel bank into ``K``, so ``conv(X, K) = F × Kᵀ`` — which the
relation-centric engine then runs as a join + aggregation over blocks.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def conv_output_shape(
    height: int, width: int, kh: int, kw: int, stride: int = 1, padding: int = 0
) -> tuple[int, int]:
    """Spatial output dimensions of a 2-D convolution."""
    out_h = (height + 2 * padding - kh) // stride + 1
    out_w = (width + 2 * padding - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ShapeError(
            f"kernel {kh}×{kw} with stride {stride}, padding {padding} does not "
            f"fit input {height}×{width}"
        )
    return out_h, out_w


def im2col(
    image: np.ndarray, kh: int, kw: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Flatten an (H, W, C) image into a patch matrix.

    Returns shape ``(out_h * out_w, kh * kw * C)`` where each row is one
    receptive field in row-major patch order.  This is the paper's
    "spatial rewriting algorithm" for convolution.
    """
    if image.ndim != 3:
        raise ShapeError(f"im2col expects (H, W, C), got shape {image.shape}")
    height, width, channels = image.shape
    out_h, out_w = conv_output_shape(height, width, kh, kw, stride, padding)
    if padding:
        image = np.pad(
            image, ((padding, padding), (padding, padding), (0, 0)), mode="constant"
        )
    # Gather patches with stride tricks, then reshape to the patch matrix.
    strides = image.strides
    windows = np.lib.stride_tricks.as_strided(
        image,
        shape=(out_h, out_w, kh, kw, channels),
        strides=(
            strides[0] * stride,
            strides[1] * stride,
            strides[0],
            strides[1],
            strides[2],
        ),
        writeable=False,
    )
    return windows.reshape(out_h * out_w, kh * kw * channels).astype(np.float64)


def kernel_matrix(kernels: np.ndarray) -> np.ndarray:
    """Flatten (out_channels, kh, kw, in_channels) kernels to (out_ch, kh*kw*C)."""
    if kernels.ndim != 4:
        raise ShapeError(
            f"kernels must be (out_ch, kh, kw, in_ch), got shape {kernels.shape}"
        )
    out_channels = kernels.shape[0]
    return kernels.reshape(out_channels, -1).astype(np.float64)


def conv2d_via_im2col(
    image: np.ndarray, kernels: np.ndarray, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Convolution as ``F × Kᵀ`` (the rewrite the paper lowers to relations).

    ``image`` is (H, W, C); ``kernels`` is (out_ch, kh, kw, C).
    Returns (out_h, out_w, out_ch).
    """
    __, kh, kw, in_ch = kernels.shape
    if image.shape[2] != in_ch:
        raise ShapeError(
            f"image has {image.shape[2]} channels but kernels expect {in_ch}"
        )
    out_h, out_w = conv_output_shape(
        image.shape[0], image.shape[1], kh, kw, stride, padding
    )
    patches = im2col(image, kh, kw, stride, padding)
    flat = patches @ kernel_matrix(kernels).T
    return flat.reshape(out_h, out_w, kernels.shape[0])


def conv2d_direct(
    image: np.ndarray, kernels: np.ndarray, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Straightforward nested-loop convolution (reference for tests)."""
    out_ch, kh, kw, in_ch = kernels.shape
    if image.shape[2] != in_ch:
        raise ShapeError(
            f"image has {image.shape[2]} channels but kernels expect {in_ch}"
        )
    out_h, out_w = conv_output_shape(
        image.shape[0], image.shape[1], kh, kw, stride, padding
    )
    if padding:
        image = np.pad(
            image, ((padding, padding), (padding, padding), (0, 0)), mode="constant"
        )
    out = np.zeros((out_h, out_w, out_ch))
    for oc in range(out_ch):
        for i in range(out_h):
            for j in range(out_w):
                window = image[
                    i * stride : i * stride + kh, j * stride : j * stride + kw, :
                ]
                out[i, j, oc] = np.sum(window * kernels[oc])
    return out
