"""Blocked matrices: chunked views of dense matrices.

``BlockedMatrix`` holds blocks in a dict keyed by (block-row, block-col).
The relation-centric engine never materializes the dense matrix: it streams
blocks into heap tables and back out.  Dense round trips exist for tests
and for small results.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from ..errors import ShapeError
from ..storage.catalog import Catalog, TableInfo
from .block import TensorBlock, block_table_schema, block_to_row, row_to_block


class BlockedMatrix:
    """A (possibly ragged-edged) blocked 2-D matrix."""

    def __init__(
        self,
        shape: tuple[int, int],
        block_shape: tuple[int, int],
        blocks: dict[tuple[int, int], np.ndarray] | None = None,
    ):
        if shape[0] <= 0 or shape[1] <= 0:
            raise ShapeError(f"matrix shape must be positive, got {shape}")
        if block_shape[0] <= 0 or block_shape[1] <= 0:
            raise ShapeError(f"block shape must be positive, got {block_shape}")
        self.shape = shape
        self.block_shape = block_shape
        self._blocks: dict[tuple[int, int], np.ndarray] = blocks if blocks is not None else {}

    # -- construction -----------------------------------------------------

    @classmethod
    def from_dense(
        cls, array: np.ndarray, block_shape: tuple[int, int]
    ) -> "BlockedMatrix":
        if array.ndim != 2:
            raise ShapeError(f"expected a 2-D array, got shape {array.shape}")
        array = np.asarray(array, dtype=np.float64)
        out = cls(array.shape, block_shape)  # type: ignore[arg-type]
        br, bc = block_shape
        for i in range(out.num_block_rows):
            for j in range(out.num_block_cols):
                block = array[i * br : (i + 1) * br, j * bc : (j + 1) * bc]
                out._blocks[(i, j)] = np.ascontiguousarray(block)
        return out

    @classmethod
    def zeros(
        cls, shape: tuple[int, int], block_shape: tuple[int, int]
    ) -> "BlockedMatrix":
        return cls.from_dense(np.zeros(shape), block_shape)

    # -- geometry ----------------------------------------------------------

    @property
    def num_block_rows(self) -> int:
        return -(-self.shape[0] // self.block_shape[0])

    @property
    def num_block_cols(self) -> int:
        return -(-self.shape[1] // self.block_shape[1])

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._blocks.values())

    def block_dims(self, i: int, j: int) -> tuple[int, int]:
        """Shape of block (i, j), accounting for ragged edges."""
        br, bc = self.block_shape
        rows = min(br, self.shape[0] - i * br)
        cols = min(bc, self.shape[1] - j * bc)
        if rows <= 0 or cols <= 0:
            raise ShapeError(f"block ({i}, {j}) out of range for {self.shape}")
        return rows, cols

    # -- block access --------------------------------------------------------

    def get_block(self, i: int, j: int) -> np.ndarray:
        """Block (i, j); missing blocks read as zeros (sparse-friendly)."""
        block = self._blocks.get((i, j))
        if block is None:
            return np.zeros(self.block_dims(i, j))
        return block

    def set_block(self, i: int, j: int, data: np.ndarray) -> None:
        expected = self.block_dims(i, j)
        if data.shape != expected:
            raise ShapeError(
                f"block ({i}, {j}) must have shape {expected}, got {data.shape}"
            )
        self._blocks[(i, j)] = np.ascontiguousarray(data, dtype=np.float64)

    def iter_blocks(self) -> Iterator[TensorBlock]:
        for (i, j), data in sorted(self._blocks.items()):
            yield TensorBlock(i, j, data)

    # -- conversion ----------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape)
        br, bc = self.block_shape
        for (i, j), block in self._blocks.items():
            out[
                i * br : i * br + block.shape[0], j * bc : j * bc + block.shape[1]
            ] = block
        return out

    # -- blockwise math (reference implementations) --------------------------

    def matmul(self, other: "BlockedMatrix") -> "BlockedMatrix":
        """Direct blocked matmul (reference for the relational rewrite)."""
        if self.shape[1] != other.shape[0]:
            raise ShapeError(
                f"cannot multiply {self.shape} by {other.shape}"
            )
        if self.block_shape[1] != other.block_shape[0]:
            raise ShapeError(
                f"inner block dims differ: {self.block_shape[1]} vs "
                f"{other.block_shape[0]}"
            )
        result = BlockedMatrix(
            (self.shape[0], other.shape[1]),
            (self.block_shape[0], other.block_shape[1]),
        )
        partials: dict[tuple[int, int], np.ndarray] = {}
        for (i, k), a_block in self._blocks.items():
            for j in range(other.num_block_cols):
                b_block = other._blocks.get((k, j))
                if b_block is None:
                    continue
                partial = a_block @ b_block
                key = (i, j)
                if key in partials:
                    partials[key] += partial
                else:
                    partials[key] = partial
        result._blocks = partials
        return result

    def map_blocks(self, fn: Callable[[np.ndarray], np.ndarray]) -> "BlockedMatrix":
        """Apply an element-wise function block by block (e.g. ReLU)."""
        out = BlockedMatrix(self.shape, self.block_shape)
        for key, block in self._blocks.items():
            mapped = fn(block)
            if mapped.shape != block.shape:
                raise ShapeError("map_blocks function must preserve block shape")
            out._blocks[key] = np.ascontiguousarray(mapped, dtype=np.float64)
        return out

    def add_row_vector(self, vector: np.ndarray) -> "BlockedMatrix":
        """Broadcast-add a length-``ncols`` vector to every row (bias add)."""
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vector.size != self.shape[1]:
            raise ShapeError(
                f"bias length {vector.size} does not match ncols {self.shape[1]}"
            )
        bc = self.block_shape[1]
        out = BlockedMatrix(self.shape, self.block_shape)
        for i in range(self.num_block_rows):
            for j in range(self.num_block_cols):
                segment = vector[j * bc : j * bc + self.block_dims(i, j)[1]]
                out._blocks[(i, j)] = self.get_block(i, j) + segment
        return out

    def row_softmax(self) -> "BlockedMatrix":
        """Numerically stable row-wise softmax across column blocks.

        Softmax needs whole rows, which span column blocks, so this is the
        classic two-pass blocked algorithm: pass one computes per-row max
        and the sum of shifted exponentials; pass two normalises.
        """
        row_max = np.full(self.shape[0], -np.inf)
        br = self.block_shape[0]
        for (i, __), block in self._blocks.items():
            rows = slice(i * br, i * br + block.shape[0])
            np.maximum(row_max[rows], block.max(axis=1), out=row_max[rows])
        row_sum = np.zeros(self.shape[0])
        for (i, __), block in self._blocks.items():
            rows = slice(i * br, i * br + block.shape[0])
            row_sum[rows] += np.exp(block - row_max[rows, None]).sum(axis=1)
        out = BlockedMatrix(self.shape, self.block_shape)
        for (i, j), block in self._blocks.items():
            rows = slice(i * br, i * br + block.shape[0])
            out._blocks[(i, j)] = np.exp(block - row_max[rows, None]) / row_sum[
                rows, None
            ]
        return out

    # -- persistence through the relational engine ---------------------------

    def store(self, catalog: Catalog, table_name: str) -> TableInfo:
        """Materialise the blocks into a heap table (creates the table)."""
        info = catalog.create_table(table_name, block_table_schema())
        for block in self.iter_blocks():
            info.heap.insert(block_to_row(block))
            info.row_count += 1
        return info

    @classmethod
    def load(
        cls,
        table: TableInfo,
        shape: tuple[int, int],
        block_shape: tuple[int, int],
    ) -> "BlockedMatrix":
        """Rebuild a blocked matrix by scanning its heap table."""
        out = cls(shape, block_shape)
        for __, row in table.heap.scan():
            block = row_to_block(row)
            out.set_block(block.row_blk, block.col_blk, block.data)
        return out
