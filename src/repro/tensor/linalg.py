"""Blocked linear algebra lowered to relational operator pipelines.

This module realises the paper's central rewrite (Fig. 1c / Sec. 7.1):

    ``A × B``  →  ``Aggregate(SUM_BLOCK)  ∘  multiply-UDF  ∘
                   HashJoin(A.col_blk = B.row_blk)``

The pipelines are built from the ordinary operators in
:mod:`repro.relational.operators`, so when the inputs are heap tables the
whole computation runs block-at-a-time through the buffer pool — which is
what lets it survive operators larger than memory.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from ..errors import ShapeError
from ..relational.expressions import ColumnRef
from ..relational.operators import (
    Aggregate,
    AggregateSpec,
    GeneratorScan,
    HashJoin,
    MapRows,
    Operator,
    Project,
    SeqScan,
)
from ..relational.schema import Schema
from ..storage.catalog import TableInfo
from .block import block_table_schema, block_to_row, row_to_block
from .blocked import BlockedMatrix

BLOCK_COLUMNS = ("row_blk", "col_blk", "nrows", "ncols", "data")


def prefixed_block_schema(prefix: str) -> Schema:
    """Block-table schema with every column renamed ``<prefix>_<name>``."""
    base = block_table_schema()
    return Schema(col.renamed(f"{prefix}_{col.name}") for col in base)


def block_scan_from_matrix(
    matrix: BlockedMatrix, prefix: str, label: str = ""
) -> Operator:
    """Stream an in-memory blocked matrix as a block relation."""

    def factory() -> Iterator[tuple]:
        for block in matrix.iter_blocks():
            yield block_to_row(block)

    return GeneratorScan(prefixed_block_schema(prefix), factory, label=label or prefix)


def block_scan_from_table(table: TableInfo, prefix: str) -> Operator:
    """Scan a persisted block table, renaming columns with ``prefix``."""
    scan = SeqScan(table)
    items = [
        (ColumnRef(name), f"{prefix}_{name}") for name in BLOCK_COLUMNS
    ]
    return Project(scan, items)


def matmul_pipeline(
    a: Operator, b: Operator, a_prefix: str = "a", b_prefix: str = "b"
) -> Operator:
    """Build the join + multiply + aggregate pipeline for ``A × B``.

    ``a`` and ``b`` must produce prefixed block rows (see
    :func:`block_scan_from_matrix` / :func:`block_scan_from_table`).
    The output schema is the unprefixed block-table schema.
    """
    join = HashJoin(
        a,
        b,
        [ColumnRef(f"{a_prefix}_col_blk")],
        [ColumnRef(f"{b_prefix}_row_blk")],
    )
    schema = join.schema
    a_idx = [schema.index_of(f"{a_prefix}_{c}") for c in BLOCK_COLUMNS]
    b_idx = [schema.index_of(f"{b_prefix}_{c}") for c in BLOCK_COLUMNS]

    def multiply(batch: list[tuple]) -> Iterator[tuple]:
        for row in batch:
            a_rb, __, a_nr, a_nc, a_data = (row[i] for i in a_idx)
            __, b_cb, b_nr, b_nc, b_data = (row[i] for i in b_idx)
            if a_nc != b_nr:
                raise ShapeError(
                    f"joined blocks have incompatible inner dims {a_nc} vs {b_nr}"
                )
            left = np.frombuffer(a_data, dtype=np.float64).reshape(a_nr, a_nc)
            right = np.frombuffer(b_data, dtype=np.float64).reshape(b_nr, b_nc)
            partial = left @ right
            yield (a_rb, b_cb, a_nr, b_nc, partial.tobytes())

    multiplied = MapRows(
        join,
        multiply,
        block_table_schema(),
        batch_size=64,
        label="block-multiply",
    )
    return Aggregate(
        multiplied,
        group_by=[
            (ColumnRef("row_blk"), "row_blk"),
            (ColumnRef("col_blk"), "col_blk"),
            (ColumnRef("nrows"), "nrows"),
            (ColumnRef("ncols"), "ncols"),
        ],
        aggregates=[AggregateSpec("SUM_BLOCK", ColumnRef("data"), "data")],
    )


def elementwise_pipeline(
    source: Operator, fn: Callable[[np.ndarray], np.ndarray], label: str
) -> Operator:
    """Apply an element-wise function to every block (e.g. ReLU)."""

    def apply(batch: list[tuple]) -> Iterator[tuple]:
        for row in batch:
            block = row_to_block(row)
            mapped = np.ascontiguousarray(fn(block.data), dtype=np.float64)
            if mapped.shape != block.data.shape:
                raise ShapeError(f"{label} must preserve block shape")
            yield (block.row_blk, block.col_blk, mapped.shape[0], mapped.shape[1], mapped.tobytes())

    return MapRows(source, apply, block_table_schema(), batch_size=64, label=label)


def bias_add_pipeline(source: Operator, bias: np.ndarray, block_cols: int) -> Operator:
    """Broadcast-add a bias vector, sliced per column block."""
    bias = np.asarray(bias, dtype=np.float64).reshape(-1)

    def apply(batch: list[tuple]) -> Iterator[tuple]:
        for row in batch:
            block = row_to_block(row)
            start = block.col_blk * block_cols
            segment = bias[start : start + block.data.shape[1]]
            if segment.size != block.data.shape[1]:
                raise ShapeError(
                    f"bias of length {bias.size} does not cover column block "
                    f"{block.col_blk}"
                )
            data = block.data + segment
            yield (block.row_blk, block.col_blk, data.shape[0], data.shape[1], data.tobytes())

    return MapRows(source, apply, block_table_schema(), batch_size=64, label="bias-add")


def transpose_pipeline(source: Operator) -> Operator:
    """Relational block transpose: swap block coordinates, transpose data.

    ``Aᵀ`` is a pure map over the block relation — no shuffle needed —
    which is what makes the relation-centric backward pass (``Xᵀ × dY``)
    expressible with the same operators as the forward pass.
    """

    def apply(batch: list[tuple]) -> Iterator[tuple]:
        for row in batch:
            block = row_to_block(row)
            data = np.ascontiguousarray(block.data.T)
            yield (block.col_blk, block.row_blk, data.shape[0], data.shape[1], data.tobytes())

    return MapRows(source, apply, block_table_schema(), batch_size=64, label="transpose")


def elementwise_binary_pipeline(
    left: Operator,
    right: Operator,
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
    label: str,
) -> Operator:
    """Join two block relations on block coordinates and combine blocks.

    Used by the training extension for gradient masking
    (``dZ = dA ⊙ 1[Z > 0]``).  Both inputs must produce *unprefixed*
    block rows covering the same block grid.
    """
    left_prefixed = _prefix_blocks(left, "l")
    right_prefixed = _prefix_blocks(right, "r")
    join = HashJoin(
        left_prefixed,
        right_prefixed,
        [ColumnRef("l_row_blk"), ColumnRef("l_col_blk")],
        [ColumnRef("r_row_blk"), ColumnRef("r_col_blk")],
    )
    schema = join.schema
    l_idx = [schema.index_of(f"l_{c}") for c in BLOCK_COLUMNS]
    r_idx = [schema.index_of(f"r_{c}") for c in BLOCK_COLUMNS]

    def apply(batch: list[tuple]) -> Iterator[tuple]:
        for row in batch:
            rb, cb, l_nr, l_nc, l_data = (row[i] for i in l_idx)
            __, __, r_nr, r_nc, r_data = (row[i] for i in r_idx)
            if (l_nr, l_nc) != (r_nr, r_nc):
                raise ShapeError(
                    f"block ({rb}, {cb}) shapes differ: "
                    f"({l_nr}, {l_nc}) vs ({r_nr}, {r_nc})"
                )
            a = np.frombuffer(l_data, dtype=np.float64).reshape(l_nr, l_nc)
            b = np.frombuffer(r_data, dtype=np.float64).reshape(r_nr, r_nc)
            out = np.ascontiguousarray(fn(a, b), dtype=np.float64)
            yield (rb, cb, out.shape[0], out.shape[1], out.tobytes())

    return MapRows(join, apply, block_table_schema(), batch_size=64, label=label)


def column_sum_pipeline(source: Operator) -> Operator:
    """Sum a block relation over its rows: one output block row per
    column block (used for bias gradients, ``db = Σ_rows dY``)."""

    def collapse(batch: list[tuple]) -> Iterator[tuple]:
        for row in batch:
            block = row_to_block(row)
            summed = block.data.sum(axis=0, keepdims=True)
            yield (0, block.col_blk, 1, summed.shape[1], summed.tobytes())

    collapsed = MapRows(
        source, collapse, block_table_schema(), batch_size=64, label="col-sum"
    )
    return Aggregate(
        collapsed,
        group_by=[
            (ColumnRef("row_blk"), "row_blk"),
            (ColumnRef("col_blk"), "col_blk"),
            (ColumnRef("nrows"), "nrows"),
            (ColumnRef("ncols"), "ncols"),
        ],
        aggregates=[AggregateSpec("SUM_BLOCK", ColumnRef("data"), "data")],
    )


def _prefix_blocks(op: Operator, prefix: str) -> Operator:
    from ..relational.operators import Project

    return Project(op, [(ColumnRef(c), f"{prefix}_{c}") for c in BLOCK_COLUMNS])


def drain_to_matrix(
    source: Operator, shape: tuple[int, int], block_shape: tuple[int, int]
) -> BlockedMatrix:
    """Execute a block pipeline and collect the result blocks."""
    out = BlockedMatrix(shape, block_shape)
    for row in source:
        block = row_to_block(row)
        out.set_block(block.row_blk, block.col_blk, block.data)
    return out


def drain_to_table(source: Operator, catalog, table_name: str) -> TableInfo:
    """Execute a block pipeline, materialising block rows into a heap table.

    This is how the relation-centric engine passes intermediates between
    layers: the blocks land on pages (spilling through the buffer pool as
    needed) instead of in one dense array.
    """
    info = catalog.create_table(table_name, block_table_schema())
    for row in source:
        info.heap.insert(row)
        info.row_count += 1
    return info
