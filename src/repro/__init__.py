"""repro — serving deep learning models from a relational database.

A full reproduction of "Serving Deep Learning Models from Relational
Databases" (EDBT 2024): an embedded RDBMS whose query engine adaptively
executes model inference in DL-centric, UDF-centric, or relation-centric
form, with inference-result caching, unified resource management, and
storage co-optimization.

Quickstart::

    from repro import Database
    from repro.models import fraud_fc_256

    db = Database()
    db.execute("CREATE TABLE tx (id INT, f0 DOUBLE, f1 DOUBLE, ...)")
    db.register_model(fraud_fc_256(), name="fraud")
    cur = db.execute("SELECT id, PREDICT(fraud, f0, f1, ...) FROM tx")
"""

from .config import DEFAULT_CONFIG, SystemConfig, gb, mb
from .core.ir import InferencePlan, Representation
from .dlruntime.memory import MemoryBudget
from .errors import (
    CircuitOpenError,
    CorruptPageError,
    DeadlineExceededError,
    DeploymentError,
    InjectedFaultError,
    NoServableVersionError,
    OutOfMemoryError,
    ReproError,
    ServerClosedError,
    ServerError,
    ServerOverloadedError,
    SlaViolationError,
    SqlError,
    StageTimeoutError,
    StorageError,
)
from .faults import FaultInjector, FaultPlan, FaultSpec
from .health import HealthReport
from .lifecycle import (
    DEPLOYMENT_COLUMNS,
    Deployment,
    DeploymentController,
    ModelCatalog,
)
from .resilience import BreakerBoard, CircuitBreaker, RecoveryLedger
from .server import ModelServer, RequestFuture, RequestState
from .session import Cursor, Database

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Cursor",
    "SystemConfig",
    "DEFAULT_CONFIG",
    "mb",
    "gb",
    "MemoryBudget",
    "Representation",
    "InferencePlan",
    "ModelServer",
    "RequestFuture",
    "RequestState",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "ReproError",
    "OutOfMemoryError",
    "StorageError",
    "CorruptPageError",
    "InjectedFaultError",
    "SqlError",
    "SlaViolationError",
    "DeploymentError",
    "NoServableVersionError",
    "ModelCatalog",
    "Deployment",
    "DeploymentController",
    "DEPLOYMENT_COLUMNS",
    "ServerError",
    "ServerOverloadedError",
    "ServerClosedError",
    "DeadlineExceededError",
    "CircuitOpenError",
    "StageTimeoutError",
    "HealthReport",
    "RecoveryLedger",
    "CircuitBreaker",
    "BreakerBoard",
    "__version__",
]
